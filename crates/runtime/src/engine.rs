//! The query engine: executes a compiled trigger program against a stream of updates.
//!
//! The engine owns the [`Database`] of views, stored base relations and static tables.
//! Its native unit of work is the [`DeltaBatch`]: per-relation GMR deltas built from a
//! slice of the update stream (insert = `+1`, delete = `−1`, same-key events collapsed
//! by ring addition — see [`dbtoaster_agca::batch`]). [`Engine::process`] is the
//! degenerate batch of one event; [`Engine::process_batch`] is the real entry point the
//! serving writer and WAL replay use.
//!
//! Per single-tuple firing the execution order is the paper's (Section 7.2):
//!
//! 1. all incremental (`+=`) statements of the matching trigger, which by construction
//!    read the *old* versions of the views they use;
//! 2. the update itself is applied to the stored base relation (if it is stored at all —
//!    full Higher-Order IVM usually does not need the base relations);
//! 3. all re-evaluation (`:=`) statements, which read the *new* versions.
//!
//! ## Batch execution
//!
//! How a multi-entry delta drives that sequence is chosen statically per relation by
//! [`TriggerProgram::batch_dispatch`]:
//!
//! * **Batch-delta** (the preferred path; chosen whenever the compiler derived a
//!   second-order batch program — see the derivation in the compiler's
//!   `batch_delta` module): every incremental statement of both sign triggers is
//!   evaluated against the *pre-run* state with its writes buffered, then the
//!   compiled correction statements — which join the run's delta with itself
//!   through the `@delta:R` / `@delta_abs:R` pseudo-relations — run once per run
//!   to account for intra-batch interaction, and only then do all buffered
//!   statement writes and the base update land. One target resolution, one
//!   change-log entry and one version bump per statement per run. Any evaluation
//!   error discards the (still unapplied) buffers and replays the whole run
//!   entry-major, reproducing per-event poison semantics exactly.
//! * **Statement-major** (legacy fallback — triggers whose statements never read
//!   anything the same run writes, when no batch program was derived): each
//!   incremental statement is dispatched *once* per batch and driven over all
//!   delta entries back-to-back — the kernel prelude and loop-invariant fused
//!   scans run once, rows are buffered with entry boundaries, and the target map
//!   is written in one pass (one change-log entry resolution and one
//!   snapshot-cache bump per statement). Base updates follow in one pass, and
//!   `:=` statements fire once, bound to the run's last event — exactly the
//!   firing whose output survives event-at-a-time processing.
//! * **Entry-major** (the oracle and last-resort fallback — `:=` replace
//!   semantics, increment chains that read their own targets such as the
//!   brokerspread query's self-referencing `m_bsv` map, or shapes whose
//!   second-order correction the compiler could not derive): each surviving
//!   entry fires the full per-event sequence `|mult|` times. Always exact;
//!   amortizes only the per-batch dispatch.
//!
//! All paths are driven by the same loops for compiled kernels and the AST
//! interpreter, so the interpreter remains the differential-testing oracle for batch
//! execution too. See the ring-linearity argument in [`dbtoaster_agca::batch`] for
//! why statement-major reproduces per-event processing, and the compiler's
//! `batch_delta` module for the Taylor-style first-plus-second-order argument
//! behind batch-delta (both bit-exactly on integer-weighted streams; to summation
//! order on float aggregates).
//!
//! When a program is increment-only, [`Engine::process_batch`] additionally
//! *merges* same-relation runs of a batch before processing (ring addition of
//! their entries): each run's processing is a pure state difference, so the
//! telescoping sum over merged runs is exact, and interleaved streams (e.g.
//! alternating bids/asks) collapse from many short runs into one per relation.

use crate::store::{CachedSource, Database};
use dbtoaster_agca::batch::{
    delta_abs_relation_name, delta_relation_name, DeltaBatch, RelationDelta,
};
use dbtoaster_agca::eval::{
    eval_with, eval_with_scratch, matches_pattern, Bindings, EvalError, EvalScratch, RelationSource,
};
use dbtoaster_agca::plan::{CompiledStmt, KernelState};
use dbtoaster_agca::{UpdateEvent, UpdateSign};
use dbtoaster_compiler::{
    BatchCorrection, BatchStrategy, Catalog, ResultAccess, Statement, StmtOp, Trigger,
    TriggerProgram,
};
use dbtoaster_gmr::{FastMap, Gmr, Tuple, Value};
use dbtoaster_telemetry::{
    LocalHistogram, RunSpan, SlowBatchTrace, Stage, StmtSpan, Telemetry, ViewCounters,
};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Environment variable forcing the engine onto the AST-interpreter path even
/// when compiled kernels are available (`1`/`true`/`yes`; any other value or
/// absence leaves kernels enabled). The programmatic equivalent is
/// [`Engine::set_force_interpreter`].
///
/// **Durability caveat:** the two paths agree bit-for-bit on integer data but
/// may differ in the last ulp on floating-point aggregates (different
/// summation orders). A durable deployment should therefore keep the same
/// execution path across restarts: recovering a crashed compiled-path server
/// with the interpreter forced (or vice versa) reproduces float view state to
/// relative ~1e-15, not bit-exactly.
pub const FORCE_INTERPRETER_ENV: &str = "DBTOASTER_FORCE_INTERPRETER";

fn env_forces_interpreter() -> bool {
    std::env::var(FORCE_INTERPRETER_ENV)
        .map(|v| {
            let v = v.trim().to_ascii_lowercase();
            !v.is_empty() && v != "0" && v != "false" && v != "no"
        })
        .unwrap_or(false)
}

/// Environment variable forcing a particular [`BatchStrategy`] for every
/// relation, overriding the compiler's dispatch analysis at engine
/// construction. The programmatic equivalent is
/// [`Engine::set_force_batch_strategy`].
///
/// * `entry` / `entry-major` — the per-event oracle: every run fires the full
///   single-tuple sequence per surviving entry.
/// * `statement` / `statement-major` — the legacy analysis without batch-delta
///   programs (relations the analysis deems unsafe still run entry-major).
/// * `auto` / `batch-delta` / unset — the default dispatch: batch-delta where
///   derived, legacy strategies elsewhere.
///
/// Useful for differential testing (all strategies must agree bit-exactly on
/// integer-weighted streams) and as an escape hatch. Like
/// [`FORCE_INTERPRETER_ENV`], a durable deployment should keep the same
/// setting across restarts so float view state replays identically.
pub const FORCE_BATCH_STRATEGY_ENV: &str = "DBTOASTER_FORCE_BATCH_STRATEGY";

fn env_forced_batch_strategy() -> Option<BatchStrategy> {
    let v = std::env::var(FORCE_BATCH_STRATEGY_ENV).unwrap_or_default();
    parse_batch_strategy(&v)
}

/// Parse a strategy override name (see [`FORCE_BATCH_STRATEGY_ENV`]);
/// unrecognised values mean "automatic".
pub fn parse_batch_strategy(name: &str) -> Option<BatchStrategy> {
    match name.trim().to_ascii_lowercase().as_str() {
        "entry" | "entry-major" | "entry_major" => Some(BatchStrategy::EntryMajor),
        "statement" | "statement-major" | "statement_major" => Some(BatchStrategy::StatementMajor),
        _ => None,
    }
}

/// Kernel for statement `j`, when the trigger has one.
fn flat_get(kernels: &[Option<CompiledStmt>], j: usize) -> Option<&CompiledStmt> {
    kernels.get(j).and_then(|k| k.as_ref())
}

/// The keys of one view that were touched since the last [`Engine::take_changes`].
///
/// `cleared` is set when a `:=` statement wiped the view, in which case `keys`
/// only covers writes *after* the clear and a consumer should diff the view
/// against its previous snapshot wholesale.
#[derive(Clone, Debug, Default)]
pub struct ViewChange {
    /// The view was cleared by a re-evaluation statement.
    pub cleared: bool,
    /// Distinct keys written since the last drain (post-clear writes only when
    /// `cleared` is set). The unit value map is used as a cheap hash set.
    pub keys: FastMap<Tuple, ()>,
}

/// Changed-key log across all views, drained by [`Engine::take_changes`].
///
/// This is the hook the serving layer uses to turn statement-level writes into
/// per-query output deltas: after a batch, each changed key's old multiplicity
/// (previous snapshot) and new multiplicity (current snapshot) are compared.
#[derive(Clone, Debug, Default)]
pub struct ChangeSet {
    /// Per-view change records, keyed by view name.
    pub views: FastMap<String, ViewChange>,
}

impl ChangeSet {
    /// The change record for one view, created on first touch. Resolved once
    /// per (statement, batch) on the batch path — the per-write cost is then
    /// one key clone into the set, no name hashing.
    fn entry(&mut self, view: &str) -> &mut ViewChange {
        if !self.views.contains_key(view) {
            self.views.insert(view.to_string(), ViewChange::default());
        }
        self.views.get_mut(view).expect("inserted above")
    }

    fn record_key(&mut self, view: &str, key: Tuple) {
        // Single hash on the hit path (this runs once per write on the
        // per-firing paths while change tracking is on).
        if let Some(c) = self.views.get_mut(view) {
            c.keys.insert(key, ());
        } else {
            let mut c = ViewChange::default();
            c.keys.insert(key, ());
            self.views.insert(view.to_string(), c);
        }
    }

    fn record_clear(&mut self, view: &str) {
        let c = self.entry(view);
        c.cleared = true;
        c.keys.clear();
    }

    /// Are there no recorded changes?
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Fold a newer change set into this one (`self` happened first). A newer
    /// clear supersedes older keys; otherwise key sets union.
    pub fn merge(&mut self, newer: ChangeSet) {
        for (view, change) in newer.views {
            match self.views.get_mut(&view) {
                None => {
                    self.views.insert(view, change);
                }
                Some(existing) => {
                    if change.cleared {
                        *existing = change;
                    } else {
                        existing.keys.extend(change.keys);
                    }
                }
            }
        }
    }
}

/// Errors raised while processing events.
#[derive(Clone, Debug, PartialEq)]
pub enum RuntimeError {
    /// Statement evaluation failed.
    Eval(EvalError),
    /// A statement targets a view that was never declared.
    UnknownView(String),
    /// A statement's key variable is neither bound by the trigger nor produced by the
    /// right-hand side.
    MissingKeyVariable { statement: String, variable: String },
    /// An event's tuple arity does not match the trigger's variables.
    EventArityMismatch {
        relation: String,
        expected: usize,
        actual: usize,
    },
    /// The named query is not part of the compiled program.
    UnknownQuery(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Eval(e) => write!(f, "evaluation error: {e}"),
            RuntimeError::UnknownView(v) => write!(f, "unknown view {v}"),
            RuntimeError::MissingKeyVariable {
                statement,
                variable,
            } => {
                write!(
                    f,
                    "key variable {variable} not available in statement {statement}"
                )
            }
            RuntimeError::EventArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "event for {relation} has {actual} values, trigger expects {expected}"
            ),
            RuntimeError::UnknownQuery(q) => write!(f, "unknown query {q}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<EvalError> for RuntimeError {
    fn from(e: EvalError) -> Self {
        RuntimeError::Eval(e)
    }
}

/// The outcome of one [`Engine::process_batch`] call. Processing never stops
/// at the first failure — a poison event inside a batch keeps its slot in the
/// stream (and, under durability, its WAL sequence number) while the rest of
/// the batch is applied; the caller learns how many events failed and what
/// went wrong first.
#[derive(Clone, Debug, Default)]
pub struct BatchReport {
    /// Stream events the batch covered (successful + failed).
    pub events: u64,
    /// Events whose trigger work failed (counted by the delta entries or
    /// firings they were folded into; such events may be *partially* applied —
    /// there is no statement rollback).
    pub failed_events: u64,
    /// The first error encountered, if any.
    pub first_error: Option<RuntimeError>,
    /// Which strategy actually executed each relation run, in processing
    /// order (after any run merging and after any runtime fallback from
    /// batch-delta to entry-major). Runs with no trigger under either sign —
    /// base-relation-only updates — are not recorded. Deterministic for a
    /// given program, override setting and batch boundaries, so a WAL replay
    /// produces the same sequence as live processing. Empty unless
    /// [`Engine::set_run_recording`] is on (recording costs one small
    /// allocation per run, which the zero-allocation steady-state contract
    /// of the batch-of-1 path cannot afford by default).
    pub runs: Vec<RunRecord>,
}

/// One relation run's execution record inside a [`BatchReport`].
#[derive(Clone, Debug, PartialEq)]
pub struct RunRecord {
    /// The run's relation name.
    pub relation: String,
    /// The strategy that actually executed (the dispatch choice, or
    /// [`BatchStrategy::EntryMajor`] when a batch-delta run fell back at
    /// runtime).
    pub strategy: BatchStrategy,
    /// Stream events the run covered.
    pub events: u64,
}

/// Runtime statistics: event counts, processing time and memory footprint.
///
/// The serving-level counters (`batches`, `snapshots_published`,
/// `subscriber_deltas`) stay zero on a plain single-threaded engine; the
/// serving layer fills them in and surfaces the merged view through
/// `ViewServer::stats()`.
#[derive(Clone, Debug)]
pub struct EngineStats {
    /// Events processed so far. On a plain engine only successfully applied
    /// events count; a *durable* serving writer also counts failed events,
    /// because each logged event owns a WAL sequence slot and the watermark
    /// must advance past a poison event for recovery to line up.
    pub events: u64,
    /// Statements executed so far.
    pub statements: u64,
    /// Total time spent inside `process` / `process_batch`.
    pub busy: Duration,
    /// Wall-clock time of engine creation.
    pub started: Instant,
    /// Micro-batches drained by a serving writer loop (queue drains; see
    /// [`EngineStats::delta_batches`] for the processing-side unit).
    pub batches: u64,
    /// Delta batches processed through [`Engine::process_batch`] (a plain
    /// [`Engine::process`] call counts as a batch of one).
    pub delta_batches: u64,
    /// Events whose work vanished before any kernel ran because a same-key
    /// opposite-sign event in the same batch cancelled them (ring addition
    /// inside the [`DeltaBatch`]).
    pub batch_events_collapsed: u64,
    /// Snapshots published for concurrent readers.
    pub snapshots_published: u64,
    /// Output-delta records fanned out to subscribers (sum over subscribers).
    pub subscriber_deltas: u64,
    /// Bytes appended to the write-ahead log by a durable serving writer.
    pub wal_bytes_written: u64,
    /// Checkpoints written by a durable serving writer.
    pub checkpoints_taken: u64,
    /// Events replayed from the WAL when this engine was recovered from disk
    /// (0 for engines built fresh or restored purely from a checkpoint).
    pub recovery_replayed_events: u64,
    /// Number of trigger statements executing through compiled kernels
    /// (slot-addressed plans) rather than the AST interpreter. 0 when the
    /// program carries no kernels or the engine was forced onto the
    /// interpreter path (see [`FORCE_INTERPRETER_ENV`]).
    pub compiled_triggers: u64,
    /// Relation runs executed on the batch-delta path (pre-state evaluation
    /// plus second-order corrections; see the module docs).
    pub batch_delta_runs: u64,
    /// Relation runs executed statement-major (the legacy buffered path).
    pub statement_major_runs: u64,
    /// Relation runs executed entry-major — per-event firing, either by
    /// dispatch (replace semantics / self-referencing triggers) or as the
    /// runtime fallback of a failed batch-delta run.
    pub entry_major_runs: u64,
}

impl EngineStats {
    fn new() -> Self {
        EngineStats {
            events: 0,
            statements: 0,
            busy: Duration::ZERO,
            started: Instant::now(),
            batches: 0,
            delta_batches: 0,
            batch_events_collapsed: 0,
            snapshots_published: 0,
            subscriber_deltas: 0,
            wal_bytes_written: 0,
            checkpoints_taken: 0,
            recovery_replayed_events: 0,
            compiled_triggers: 0,
            batch_delta_runs: 0,
            statement_major_runs: 0,
            entry_major_runs: 0,
        }
    }

    /// Average events per processed delta batch (0.0 before the first batch).
    /// Since the batch-first refactor this reflects the size of the
    /// [`DeltaBatch`]es actually driven through the engine, not raw serving
    /// queue drains.
    pub fn events_per_batch(&self) -> f64 {
        if self.delta_batches > 0 {
            self.events as f64 / self.delta_batches as f64
        } else {
            0.0
        }
    }

    /// Average view refresh rate (events per second of processing time), the metric of
    /// Figures 6 and 7.
    pub fn refresh_rate(&self) -> f64 {
        let secs = self.busy.as_secs_f64();
        if secs > 0.0 {
            self.events as f64 / secs
        } else {
            0.0
        }
    }
}

/// A point-in-time sample used by the trace experiments (Figures 8–10 and 13–18).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceSample {
    /// Fraction of the stream processed when the sample was taken.
    pub fraction: f64,
    /// Cumulative processing time in seconds.
    pub elapsed_secs: f64,
    /// Average refresh rate since the start (events / second).
    pub refresh_rate: f64,
    /// Approximate memory footprint of all views, in megabytes.
    pub memory_mb: f64,
}

/// Engine-internal copy of one relation's batch dispatch decision (trigger
/// indexes fit in `u16`; the strategy is `Copy`), so run processing never
/// clones strings out of the dispatch table.
#[derive(Clone, Copy, Debug)]
struct DispatchEntry {
    insert: Option<u16>,
    delete: Option<u16>,
    strategy: BatchStrategy,
    /// Index into [`TriggerProgram::batch_corrections`] when the strategy is
    /// batch-delta (resolved once at dispatch-build time).
    correction: Option<u16>,
}

/// One entry's emitted row range within the shared row buffer, plus how many
/// times it is applied (`|net multiplicity|` single-tuple firings).
#[derive(Clone, Copy, Debug)]
struct Seg {
    start: usize,
    end: usize,
    reps: u32,
}

/// Reusable buffers for statement-major batch execution.
#[derive(Debug, Default)]
struct BatchScratch {
    /// Per-entry failure flags for the current run (a failed entry is skipped
    /// by later statements, the base-update pass and the `:=` phase).
    failed: Vec<bool>,
    /// Entry boundaries into the row buffer for the statement being applied.
    segs: Vec<Seg>,
    /// Interpreter-path row buffer (the compiled path uses `KernelState::out`).
    rows: Vec<(Tuple, f64)>,
    /// Interpreter-path bindings, re-seeded per entry (cleared per statement).
    bindings: Bindings,
}

/// One statement's deferred (buffered but not yet applied) rows on the
/// batch-delta path: the evaluate phase fills one of these per executed
/// statement, the apply phase walks them in order.
#[derive(Debug, Default)]
struct DeferredStmt {
    /// Trigger index, or `u16::MAX` for a second-order correction statement.
    tidx: u16,
    /// Statement index within the trigger (or correction list).
    stmt: u16,
    /// Entry boundaries into `rows` with per-entry repetition counts.
    segs: Vec<Seg>,
    /// Buffered `(key, multiplicity)` rows.
    rows: Vec<(Tuple, f64)>,
}

/// Pooled [`DeferredStmt`] buffers for batch-delta execution. `live` marks
/// how many slots the current run has filled; discarding a run's work is just
/// `live = 0` (buffers keep their capacity for the next run).
#[derive(Debug, Default)]
struct BdScratch {
    stmts: Vec<DeferredStmt>,
    live: usize,
}

impl BdScratch {
    /// Acquire the next pooled buffer, cleared and tagged.
    fn acquire(&mut self, tidx: u16, stmt: u16) -> &mut DeferredStmt {
        if self.live == self.stmts.len() {
            self.stmts.push(DeferredStmt::default());
        }
        let slot = &mut self.stmts[self.live];
        self.live += 1;
        slot.tidx = tidx;
        slot.stmt = stmt;
        slot.segs.clear();
        slot.rows.clear();
        slot
    }
}

/// A [`RelationSource`] overlay resolving the compiler's `@delta:R` /
/// `@delta_abs:R` pseudo-relations (see
/// [`dbtoaster_agca::batch::delta_relation_name`]) against the in-flight
/// [`RelationDelta`], delegating every real name to the wrapped source. The
/// signed view streams each distinct surviving key with its net multiplicity;
/// the absolute view streams `|net|` — exactly the Δ and |Δ| factors of the
/// second-order correction statements.
///
/// The pair correction joins the delta with *itself*, so inner-side probes
/// arrive with some columns bound (the join's equality constraints). A lazy
/// per-bound-column-mask hash index keeps each probe proportional to its
/// matches instead of the whole delta — the total correction cost is then the
/// number of *real* interacting pairs, not `|Δ|²`.
struct DeltaOverlay<'a, S: RelationSource + ?Sized> {
    inner: &'a S,
    run: &'a RelationDelta,
    signed: &'a str,
    absolute: &'a str,
    /// mask of bound pattern columns → (bound values → entry indexes); built
    /// on first probe with that mask.
    index: std::cell::RefCell<FastMap<u32, FastMap<Tuple, Vec<u32>>>>,
}

impl<'a, S: RelationSource + ?Sized> DeltaOverlay<'a, S> {
    fn new(inner: &'a S, run: &'a RelationDelta, signed: &'a str, absolute: &'a str) -> Self {
        DeltaOverlay {
            inner,
            run,
            signed,
            absolute,
            index: std::cell::RefCell::new(FastMap::default()),
        }
    }
}

impl<S: RelationSource + ?Sized> RelationSource for DeltaOverlay<'_, S> {
    fn relation_arity(&self, name: &str) -> Option<usize> {
        if name == self.signed || name == self.absolute {
            Some(self.run.arity())
        } else {
            self.inner.relation_arity(name)
        }
    }

    fn for_each_matching(
        &self,
        name: &str,
        pattern: &[Option<Value>],
        visit: &mut dyn FnMut(&[Value], f64),
    ) -> Result<(), EvalError> {
        let absolute = name == self.absolute;
        if !absolute && name != self.signed {
            return self.inner.for_each_matching(name, pattern, visit);
        }
        let entries = self.run.entries();
        let mask: u32 =
            pattern
                .iter()
                .enumerate()
                .fold(0, |m, (i, p)| if p.is_some() { m | (1 << i) } else { m });
        if mask == 0 || pattern.len() > 32 {
            // Full scan (the outer side of the pair join, and the whole
            // diagonal term); wide tuples also land here and filter inline.
            for entry in entries {
                let key = entry.key.as_slice();
                if entry.mult != 0.0 && (mask == 0 || matches_pattern(key, pattern)) {
                    visit(
                        key,
                        if absolute {
                            entry.mult.abs()
                        } else {
                            entry.mult
                        },
                    );
                }
            }
            return Ok(());
        }
        let mut index = self.index.borrow_mut();
        let by_key = index.entry(mask).or_insert_with(|| {
            let mut by_key: FastMap<Tuple, Vec<u32>> = FastMap::default();
            for (i, entry) in entries.iter().enumerate() {
                if entry.mult == 0.0 {
                    continue;
                }
                let bound: Tuple = entry
                    .key
                    .iter()
                    .enumerate()
                    .filter(|(c, _)| mask & (1 << c) != 0)
                    .map(|(_, v)| v.clone())
                    .collect();
                by_key.entry(bound).or_default().push(i as u32);
            }
            by_key
        });
        let probe: Tuple = pattern.iter().flatten().cloned().collect();
        if let Some(hits) = by_key.get(&probe) {
            for &i in hits {
                let entry = &entries[i as usize];
                visit(
                    entry.key.as_slice(),
                    if absolute {
                        entry.mult.abs()
                    } else {
                        entry.mult
                    },
                );
            }
        }
        Ok(())
    }
}

/// The DBToaster runtime engine.
pub struct Engine {
    program: Arc<TriggerProgram>,
    db: Database,
    stats: EngineStats,
    /// Changed-key log, present only while change tracking is enabled.
    changes: Option<ChangeSet>,
    /// Reusable kernel execution state (frame, pattern buffers, scratch maps,
    /// row buffer) for the compiled trigger path — zero per-event allocation
    /// in steady state.
    kernel: KernelState,
    /// Interpreter scratch: memoized product orders + recycled pattern buffer
    /// for statements without compiled kernels (and the interpreter-forced
    /// mode).
    scratch: EvalScratch,
    /// Statement-major batch execution buffers.
    batch: BatchScratch,
    /// Batch-delta deferred-statement buffers (pooled across runs).
    bd: BdScratch,
    /// Recycled batch-of-1 for [`Engine::process`] (zero-allocation wrapper).
    single: DeltaBatch,
    /// Recycled merged-run batch for [`Engine::process_batch`]'s run merging.
    merged: DeltaBatch,
    /// May same-relation runs of one batch be merged before processing? True
    /// when every statement of the program is an increment (`+=`): each run's
    /// processing is then a pure state difference, so the telescoping sum
    /// over merged runs is exact. `:=` statements bind to a run's *last*
    /// event, which merging could change, so replace-bearing programs keep
    /// their original run boundaries.
    merge_runs: bool,
    /// Per-relation batch dispatch, resolved from
    /// [`TriggerProgram::batch_dispatch_forced`] at construction (and on
    /// [`Engine::set_force_batch_strategy`]).
    dispatch: FastMap<String, DispatchEntry>,
    /// Per-correction (index-aligned with `program.batch_corrections`) view
    /// names read by the relation's first-order trigger statements — the maps
    /// entry-major processing scans once per firing. Precomputed so the
    /// batch-delta cost gate reads map sizes without allocating.
    corr_read_maps: Vec<Vec<String>>,
    /// Ignore compiled kernels and interpret every statement (differential
    /// testing / escape hatch; see [`FORCE_INTERPRETER_ENV`]).
    force_interpreter: bool,
    /// Strategy override in effect (`None` = the compiler's dispatch).
    forced_strategy: Option<BatchStrategy>,
    /// Fill [`BatchReport::runs`] with per-run strategy records (off by
    /// default; see [`Engine::set_run_recording`]).
    record_runs: bool,
    /// Telemetry buffers, present only after [`Engine::set_telemetry`] with
    /// an enabled handle. `None` keeps the hot path at one predictable
    /// branch per batch.
    tel: Option<Box<TelemetryState>>,
}

/// How many delta batches between automatic telemetry flushes (local
/// histogram buffers and per-view pendings folded into the shared atomics).
const TELEMETRY_FLUSH_BATCHES: u64 = 64;

/// Reused scratch for one statement span of an armed batch (strings and
/// vectors recycled — assembling an owned [`SlowBatchTrace`] only happens on
/// the slow path).
#[derive(Debug, Default)]
struct StmtScratch {
    target: String,
    nanos: u64,
    rows: u64,
}

/// Reused scratch for one relation run of an armed batch.
#[derive(Debug, Default)]
struct RunScratch {
    relation: String,
    strategy: &'static str,
    events: u64,
    entries: u64,
    nanos: u64,
    corrections: u64,
    stmts: Vec<StmtScratch>,
    stmts_live: usize,
}

/// Engine-side telemetry buffers. Everything recorded per event or per batch
/// lands in plain-integer locals (no atomics, no extra clock reads on the
/// batch-of-1 path beyond the pre-existing busy-time pair); the shared
/// [`Telemetry`] atomics are touched only by [`Engine::flush_telemetry`],
/// which runs automatically every [`TELEMETRY_FLUSH_BATCHES`] batches.
struct TelemetryState {
    tel: Telemetry,
    /// Whole-batch latency (the existing busy-time `Instant` pair re-used).
    batch_hist: LocalHistogram,
    /// Kernel-execute latency split by executed strategy:
    /// `[batch-delta, statement-major, entry-major]`.
    stage_hists: [LocalHistogram; 3],
    /// Shared per-view counter blocks, index-aligned with `map_names` and
    /// with the kernel's [`dbtoaster_agca::KernelCounters`] slots.
    views: Vec<Arc<ViewCounters>>,
    map_names: Vec<String>,
    /// Un-flushed per-view deltas (plain adds on the hot path).
    pending_rows: Vec<u64>,
    pending_corrections: Vec<u64>,
    /// `[tidx][stmt]` → view slot of the trigger statement's target.
    stmt_slot: Vec<Vec<u32>>,
    /// `[correction idx][stmt]` → view slot of the correction's target.
    corr_slot: Vec<Vec<u32>>,
    /// Events/batches already folded into the telemetry counters.
    flushed_events: u64,
    flushed_batches: u64,
    slow_threshold_nanos: u64,
    arm_min_events: u64,
    /// Span timing armed for the current batch (big enough to amortize the
    /// per-run/per-statement clock reads; never the batch-of-1 path).
    armed: bool,
    runs: Vec<RunScratch>,
    runs_live: usize,
}

impl TelemetryState {
    fn stage_index(strategy: BatchStrategy) -> usize {
        match strategy {
            BatchStrategy::BatchDelta => 0,
            BatchStrategy::StatementMajor => 1,
            BatchStrategy::EntryMajor => 2,
        }
    }

    fn stage_of(idx: usize) -> Stage {
        match idx {
            0 => Stage::KernelBatchDelta,
            1 => Stage::KernelStatementMajor,
            _ => Stage::KernelEntryMajor,
        }
    }

    /// Start a run span (armed batches only). Strings are recycled.
    fn begin_run(&mut self, relation: &str, events: u64, entries: usize) {
        if self.runs_live == self.runs.len() {
            self.runs.push(RunScratch::default());
        }
        let r = &mut self.runs[self.runs_live];
        r.relation.clear();
        r.relation.push_str(relation);
        r.strategy = "";
        r.events = events;
        r.entries = entries as u64;
        r.nanos = 0;
        r.corrections = 0;
        r.stmts_live = 0;
        self.runs_live += 1;
    }

    /// Close the current run span.
    fn end_run(&mut self, strategy: Option<BatchStrategy>, nanos: u64) {
        let r = &mut self.runs[self.runs_live - 1];
        r.strategy = strategy.map_or("base-only", |s| s.as_str());
        r.nanos = nanos;
        if let Some(s) = strategy {
            self.stage_hists[Self::stage_index(s)].record(nanos);
        }
    }

    /// Record one statement span under the current run.
    fn stmt_span(&mut self, target: &str, nanos: u64, rows: u64) {
        if self.runs_live == 0 {
            return;
        }
        let r = &mut self.runs[self.runs_live - 1];
        if r.stmts_live == r.stmts.len() {
            r.stmts.push(StmtScratch::default());
        }
        let s = &mut r.stmts[r.stmts_live];
        s.target.clear();
        s.target.push_str(target);
        s.nanos = nanos;
        s.rows = rows;
        r.stmts_live += 1;
    }

    /// Build an owned trace from the scratch spans (slow path; allocates).
    fn assemble_trace(&self, elapsed_nanos: u64, events: u64) -> SlowBatchTrace {
        SlowBatchTrace {
            seq: 0, // assigned by the ring
            elapsed_nanos,
            threshold_nanos: self.slow_threshold_nanos,
            events,
            runs: self.runs[..self.runs_live]
                .iter()
                .map(|r| RunSpan {
                    relation: r.relation.clone(),
                    strategy: r.strategy.to_string(),
                    events: r.events,
                    entries: r.entries,
                    nanos: r.nanos,
                    correction_firings: r.corrections,
                    statements: r.stmts[..r.stmts_live]
                        .iter()
                        .map(|s| StmtSpan {
                            target: s.target.clone(),
                            nanos: s.nanos,
                            rows: s.rows,
                        })
                        .collect(),
                })
                .collect(),
        }
    }
}

/// Total rows one buffered statement will apply: emitted rows times the
/// per-entry repetition count.
fn segs_rows(segs: &[Seg]) -> u64 {
    segs.iter()
        .map(|s| (s.end - s.start) as u64 * s.reps as u64)
        .sum()
}

impl Engine {
    /// Build an engine for a compiled program. `catalog` supplies the column names of
    /// stored base relations and static tables.
    pub fn new(program: TriggerProgram, catalog: &Catalog) -> Self {
        let mut db = Database::new();
        for m in &program.maps {
            db.declare(m.name.clone(), m.out_vars.iter().cloned());
        }
        for rel in program
            .stored_relations
            .iter()
            .chain(program.static_tables.iter())
        {
            if db.contains(rel) {
                continue;
            }
            let columns: Vec<String> = catalog
                .get(rel)
                .map(|r| r.columns.clone())
                .unwrap_or_default();
            db.declare(rel.clone(), columns);
        }
        let merge_runs = program
            .triggers
            .iter()
            .all(|t| t.statements.iter().all(|s| s.op == StmtOp::Increment));
        let mut engine = Engine {
            program: Arc::new(program),
            db,
            stats: EngineStats::new(),
            changes: None,
            kernel: KernelState::new(),
            scratch: EvalScratch::default(),
            batch: BatchScratch::default(),
            bd: BdScratch::default(),
            single: DeltaBatch::new(),
            merged: DeltaBatch::new(),
            merge_runs,
            dispatch: FastMap::default(),
            corr_read_maps: Vec::new(),
            force_interpreter: false,
            forced_strategy: None,
            record_runs: false,
            tel: None,
        };
        engine.set_force_batch_strategy(env_forced_batch_strategy());
        engine.set_force_interpreter(env_forces_interpreter());
        engine
    }

    /// Force (or with `None` un-force) one [`BatchStrategy`] for every
    /// relation, rebuilding the dispatch table through
    /// [`TriggerProgram::batch_dispatch_forced`]. Used by differential tests
    /// and as an escape hatch; also settable via the
    /// [`FORCE_BATCH_STRATEGY_ENV`] environment variable at construction.
    pub fn set_force_batch_strategy(&mut self, force: Option<BatchStrategy>) {
        self.forced_strategy = force;
        self.dispatch = self
            .program
            .batch_dispatch_forced(force)
            .into_iter()
            .map(|d| {
                let correction = self
                    .program
                    .batch_corrections
                    .iter()
                    .position(|c| c.relation == d.relation)
                    .map(|i| i as u16);
                (
                    d.relation,
                    DispatchEntry {
                        insert: d.insert.map(|i| i as u16),
                        delete: d.delete.map(|i| i as u16),
                        strategy: d.strategy,
                        correction,
                    },
                )
            })
            .collect();
        // Precompute, per correction set, the views the relation's first-order
        // statements read: the batch-delta cost gate compares the correction's
        // O(firings²) pair join against entry-major's O(firings × read-map
        // size) scans, and must not allocate per run.
        self.corr_read_maps = self
            .program
            .batch_corrections
            .iter()
            .map(|c| {
                let mut names = std::collections::BTreeSet::new();
                for t in self
                    .program
                    .triggers
                    .iter()
                    .filter(|t| t.relation == c.relation)
                {
                    for s in &t.statements {
                        names.extend(s.reads());
                    }
                }
                names.into_iter().collect()
            })
            .collect();
    }

    /// The strategy override in effect (`None` = automatic dispatch).
    pub fn forced_batch_strategy(&self) -> Option<BatchStrategy> {
        self.forced_strategy
    }

    /// Enable or disable per-run strategy records in [`BatchReport::runs`]
    /// (off by default — recording allocates per run, which the batch-of-1
    /// hot path keeps at zero). The strategy-run *counters* in
    /// [`EngineStats`] are always maintained.
    pub fn set_run_recording(&mut self, enabled: bool) {
        self.record_runs = enabled;
    }

    /// Force (or un-force) the AST-interpreter path for every statement,
    /// ignoring compiled kernels. Used by differential tests and as an escape
    /// hatch; also settable via the [`FORCE_INTERPRETER_ENV`] environment
    /// variable at engine construction.
    pub fn set_force_interpreter(&mut self, force: bool) {
        self.force_interpreter = force;
        // Count only kernels the dispatcher will actually use: a trigger whose
        // kernel list is misaligned with its statement list falls back to the
        // interpreter wholesale (see `process`), and the stat must agree.
        self.stats.compiled_triggers = if force {
            0
        } else {
            self.program
                .triggers
                .iter()
                .zip(self.program.compiled.iter())
                .filter(|(t, c)| c.stmts.len() == t.statements.len())
                .map(|(_, c)| c.compiled_count() as u64)
                .sum()
        };
    }

    /// Is the engine on the interpreter-only path?
    pub fn force_interpreter(&self) -> bool {
        self.force_interpreter
    }

    /// Rebuild an engine from a checkpointed snapshot: every map is restored
    /// wholesale and the event counter resumes at `events_applied`, **without**
    /// re-running [`Engine::init_static_views`] — the snapshot already contains
    /// static tables and the views derived from them. This is the restore half
    /// of the durability layer's checkpoint/recovery protocol; replaying logged
    /// events `events_applied+1..` through [`Engine::process_batch`] afterwards
    /// reproduces a never-restarted engine bit-for-bit.
    pub fn from_snapshot(
        program: TriggerProgram,
        catalog: &Catalog,
        maps: impl IntoIterator<Item = (String, Gmr)>,
        events_applied: u64,
    ) -> Self {
        let mut engine = Engine::new(program, catalog);
        for (name, gmr) in maps {
            if !engine.db.contains(&name) {
                // Present in the snapshot but not declared by the program: a
                // table that was declared on the fly by `load_table`.
                engine
                    .db
                    .declare(name.clone(), gmr.schema().columns().iter().cloned());
            }
            engine
                .db
                .view_mut(&name)
                .expect("declared above")
                .load_gmr(&gmr);
        }
        engine.stats.events = events_applied;
        engine
    }

    /// Enable or disable the changed-key log consumed by [`Engine::take_changes`].
    /// Off by default; costs one cheap key clone per view write when on.
    pub fn set_change_tracking(&mut self, enabled: bool) {
        if enabled {
            self.changes.get_or_insert_with(ChangeSet::default);
        } else {
            self.changes = None;
        }
    }

    /// Drain the changed-key log accumulated since the last call (empty when
    /// change tracking is disabled).
    pub fn take_changes(&mut self) -> ChangeSet {
        match self.changes.as_mut() {
            Some(c) => std::mem::take(c),
            None => ChangeSet::default(),
        }
    }

    /// A consistent point-in-time snapshot of every view and stored relation:
    /// name → GMR sharing the view's copy-on-write map. O(number of views).
    pub fn snapshot(&self) -> FastMap<String, Gmr> {
        self.db.snapshot()
    }

    /// Mutable access to the statistics (the serving layer records batch-level
    /// counters here).
    pub fn stats_mut(&mut self) -> &mut EngineStats {
        &mut self.stats
    }

    /// The compiled program this engine executes.
    pub fn program(&self) -> &TriggerProgram {
        &self.program
    }

    /// A shared handle to the compiled program (for callers that outlive the
    /// engine borrow, e.g. the serving layer's subscription resolver).
    pub fn program_shared(&self) -> Arc<TriggerProgram> {
        self.program.clone()
    }

    /// Load the contents of a static table (each row with multiplicity 1). Call
    /// [`Engine::init_static_views`] after all tables are loaded.
    pub fn load_table(&mut self, name: &str, rows: impl IntoIterator<Item = Vec<Value>>) {
        let mut rows = rows.into_iter();
        if !self.db.contains(name) {
            // Declare on the fly for tables that only appear in view definitions,
            // taking the arity from the first row.
            match rows.next() {
                Some(first) => {
                    self.db
                        .declare(name.to_string(), (0..first.len()).map(|i| format!("c{i}")));
                    self.db.view_mut(name).unwrap().add(first, 1.0);
                }
                None => return,
            }
        }
        let view = self.db.view_mut(name).expect("declared above");
        for r in rows {
            view.add(r, 1.0);
        }
    }

    /// Evaluate the definitions of views that depend only on static tables and load the
    /// results (the paper's handling of `Nation`, `Region` and the MDDB metadata).
    pub fn init_static_views(&mut self) -> Result<(), RuntimeError> {
        let program = self.program.clone();
        for m in &program.maps {
            if !m.init_from_tables {
                continue;
            }
            let result = eval_with(&m.definition, &self.db, &mut Bindings::new())?;
            if let Some(view) = self.db.view_mut(&m.name) {
                view.load_gmr(&result);
            }
        }
        Ok(())
    }

    /// Process a single update event: the degenerate batch of one. Exactly
    /// equivalent to the historical per-event path — one run, one entry, one
    /// firing — and still allocation-free in steady state (the batch-of-1 is
    /// recycled and its single key stays inline for typical arities).
    pub fn process(&mut self, event: &UpdateEvent) -> Result<(), RuntimeError> {
        let mut single = std::mem::take(&mut self.single);
        single.clear();
        single.push(event);
        let report = self.process_batch(&single);
        self.single = single;
        match report.first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Process a delta batch, firing each relation run's triggers under the
    /// statically chosen [`BatchStrategy`] (see the module docs). Never stops
    /// early: failed events are skipped past (keeping their stream slot) and
    /// reported, so a durable writer's WAL watermark and a replay stay lined
    /// up with live processing.
    pub fn process_batch(&mut self, batch: &DeltaBatch) -> BatchReport {
        if batch.is_empty() {
            return BatchReport::default();
        }
        let t0 = Instant::now();
        let program = self.program.clone();
        let mut report = BatchReport {
            events: batch.events(),
            ..BatchReport::default()
        };
        // Increment-only programs: fold same-relation runs together first so
        // interleaved streams process one run per relation (ring addition may
        // also cancel entries across runs; see the module docs for legality).
        let mut merged: Option<DeltaBatch> = None;
        if self.merge_runs && batch.has_repeated_relation() {
            let mut scratch = std::mem::take(&mut self.merged);
            batch.merge_runs_into(&mut scratch);
            merged = Some(scratch);
        }
        let source: &DeltaBatch = merged.as_ref().unwrap_or(batch);
        // Arm per-run/per-statement span timing only for batches big enough
        // to amortize the extra clock reads — never the batch-of-1 path.
        let armed = match self.tel.as_deref_mut() {
            Some(ts) => {
                ts.runs_live = 0;
                ts.armed = report.events >= ts.arm_min_events;
                ts.armed
            }
            None => false,
        };
        let mut run_count = 0u32;
        let mut last_strategy: Option<BatchStrategy> = None;
        for run in source.runs() {
            let rt0 = if armed {
                self.tel
                    .as_deref_mut()
                    .expect("armed implies tel")
                    .begin_run(run.relation(), run.events(), run.entries().len());
                Some(Instant::now())
            } else {
                None
            };
            let strat = self.process_run(&program, run, &mut report);
            run_count += 1;
            last_strategy = strat;
            if let Some(rt0) = rt0 {
                let nanos = rt0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                self.tel
                    .as_deref_mut()
                    .expect("armed implies tel")
                    .end_run(strat, nanos);
            }
        }
        self.stats.batch_events_collapsed += source.collapsed_events();
        if let Some(m) = merged {
            self.merged = m;
        }
        self.stats.events += report.events - report.failed_events;
        self.stats.delta_batches += 1;
        let elapsed = t0.elapsed();
        self.stats.busy += elapsed;
        if let Some(ts) = self.tel.as_deref_mut() {
            let nanos = elapsed.as_nanos().min(u64::MAX as u128) as u64;
            ts.batch_hist.record(nanos);
            // Strategy attribution without extra clock reads: a single-run
            // batch (the overwhelmingly common case, and always the
            // batch-of-1 path) is its one run, so the whole batch
            // measurement is the run's kernel-execute time. Multi-run
            // batches were attributed per run above when armed.
            if run_count == 1 && !armed {
                if let Some(s) = last_strategy {
                    ts.stage_hists[TelemetryState::stage_index(s)].record(nanos);
                }
            }
            if ts.slow_threshold_nanos > 0 && nanos >= ts.slow_threshold_nanos {
                let trace = ts.assemble_trace(nanos, report.events);
                ts.tel.push_trace(trace);
            }
            ts.armed = false;
            if self
                .stats
                .delta_batches
                .is_multiple_of(TELEMETRY_FLUSH_BATCHES)
            {
                self.flush_telemetry();
            }
        }
        report
    }

    /// Process a sequence of events one at a time, stopping at the first error
    /// (the historical strict API; batching callers use
    /// [`Engine::process_batch`]).
    pub fn process_all<'a>(
        &mut self,
        events: impl IntoIterator<Item = &'a UpdateEvent>,
    ) -> Result<(), RuntimeError> {
        for e in events {
            self.process(e)?;
        }
        Ok(())
    }

    // -----------------------------------------------------------------------
    // Batch execution
    // -----------------------------------------------------------------------

    /// Dispatch one relation run. Returns the strategy that actually
    /// executed (`None` when the run applied only a base update or failed
    /// its arity gate).
    fn process_run(
        &mut self,
        program: &TriggerProgram,
        run: &RelationDelta,
        report: &mut BatchReport,
    ) -> Option<BatchStrategy> {
        let Some(&disp) = self.dispatch.get(run.relation()) else {
            // No trigger for this relation under either sign (e.g. an update
            // to a relation no query depends on): still keep the stored base
            // relation consistent.
            self.apply_base_run(run, false);
            return None;
        };
        // Arity gate, per run (runs are arity-uniform by construction): a
        // mismatched event applies nothing — not even the base update — just
        // like the per-event path.
        for idx in [disp.insert, disp.delete].into_iter().flatten() {
            let trigger = &program.triggers[idx as usize];
            if trigger.trigger_vars.len() != run.arity() {
                report.failed_events += run.events();
                report
                    .first_error
                    .get_or_insert(RuntimeError::EventArityMismatch {
                        relation: run.relation().to_string(),
                        expected: trigger.trigger_vars.len(),
                        actual: run.arity(),
                    });
                return None;
            }
        }
        let executed = match disp.strategy {
            BatchStrategy::StatementMajor => {
                self.run_statement_major(program, disp, run, report);
                BatchStrategy::StatementMajor
            }
            BatchStrategy::EntryMajor => {
                self.run_entry_major(program, disp, run, report);
                BatchStrategy::EntryMajor
            }
            BatchStrategy::BatchDelta => self.run_batch_delta(program, disp, run, report),
        };
        match executed {
            BatchStrategy::BatchDelta => self.stats.batch_delta_runs += 1,
            BatchStrategy::StatementMajor => self.stats.statement_major_runs += 1,
            BatchStrategy::EntryMajor => self.stats.entry_major_runs += 1,
        }
        if self.record_runs {
            report.runs.push(RunRecord {
                relation: run.relation().to_string(),
                strategy: executed,
                events: run.events(),
            });
        }
        Some(executed)
    }

    /// Route the kernel's work counters at the view slot of a trigger
    /// statement's target (no-op without telemetry).
    #[inline]
    fn set_counter_slot(&mut self, tidx: u16, j: usize) {
        if let Some(ts) = self.tel.as_deref() {
            if let Some(&slot) = ts.stmt_slot.get(tidx as usize).and_then(|v| v.get(j)) {
                if slot != u32::MAX {
                    self.kernel.counter_slot = slot as usize;
                }
            }
        }
    }

    /// A statement-span start time, taken only when the current batch armed
    /// span timing (see [`TelemetryState::armed`]).
    #[inline]
    fn armed_instant(&self) -> Option<Instant> {
        match self.tel.as_deref() {
            Some(ts) if ts.armed => Some(Instant::now()),
            _ => None,
        }
    }

    /// Close a statement span opened by [`Engine::armed_instant`].
    fn note_stmt(&mut self, st0: Option<Instant>, target: &str, rows: u64) {
        if let Some(t0) = st0 {
            let nanos = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            if let Some(ts) = self.tel.as_deref_mut() {
                ts.stmt_span(target, nanos, rows);
            }
        }
    }

    /// Credit rows written to the current counter slot's view (no-op without
    /// telemetry).
    #[inline]
    fn note_rows(&mut self, rows: u64) {
        if rows == 0 {
            return;
        }
        if let Some(ts) = self.tel.as_deref_mut() {
            if let Some(r) = ts.pending_rows.get_mut(self.kernel.counter_slot) {
                *r += rows;
            }
        }
    }

    /// Entry-major fallback: every surviving entry fires the full per-event
    /// trigger sequence `|mult|` times — identical to event-at-a-time
    /// processing of the net stream.
    fn run_entry_major(
        &mut self,
        program: &TriggerProgram,
        disp: DispatchEntry,
        run: &RelationDelta,
        report: &mut BatchReport,
    ) {
        for entry in run.entries() {
            let Some(sign) = entry.sign() else { continue };
            let tidx = match sign {
                UpdateSign::Insert => disp.insert,
                UpdateSign::Delete => disp.delete,
            };
            for _ in 0..entry.firings() {
                if let Err(e) = self.fire_single(program, run.relation(), tidx, sign, &entry.key) {
                    report.failed_events += 1;
                    report.first_error.get_or_insert(e);
                }
            }
        }
    }

    /// One complete single-tuple firing: increments, base update, replaces.
    fn fire_single(
        &mut self,
        program: &TriggerProgram,
        relation: &str,
        tidx: Option<u16>,
        sign: UpdateSign,
        key: &Tuple,
    ) -> Result<(), RuntimeError> {
        let Some(tidx) = tidx else {
            // This sign has no trigger: only the stored base relation moves.
            self.apply_base_raw(relation, key, sign.multiplier());
            return Ok(());
        };
        let trigger = &program.triggers[tidx as usize];
        let kernels = self.kernels_for(program, tidx);
        // Interpreter context, built lazily: a fully compiled trigger
        // never allocates the per-event name bindings.
        let mut bindings: Option<Bindings> = None;

        // Phase 1: incremental statements read the old state.
        for (j, stmt) in trigger.statements.iter().enumerate() {
            if stmt.op == StmtOp::Increment {
                self.set_counter_slot(tidx, j);
                self.exec_dispatch(
                    stmt,
                    flat_get(kernels, j),
                    key.as_slice(),
                    trigger,
                    &mut bindings,
                )?;
            }
        }
        // Phase 2: reflect the update in the stored base relation (if stored).
        self.apply_base_raw(relation, key, sign.multiplier());
        // Phase 3: re-evaluation statements read the new state.
        for (j, stmt) in trigger.statements.iter().enumerate() {
            if stmt.op == StmtOp::Replace {
                self.set_counter_slot(tidx, j);
                self.exec_dispatch(
                    stmt,
                    flat_get(kernels, j),
                    key.as_slice(),
                    trigger,
                    &mut bindings,
                )?;
            }
        }
        Ok(())
    }

    /// Statement-major execution of one run (see the module docs): increments
    /// driven over all entries per statement, one base-update pass, replaces
    /// once for the run's last event. Legal by the dispatch analysis.
    fn run_statement_major(
        &mut self,
        program: &TriggerProgram,
        disp: DispatchEntry,
        run: &RelationDelta,
        report: &mut BatchReport,
    ) {
        self.batch.failed.clear();
        self.batch.failed.resize(run.entries().len(), false);

        // Phase 1: incremental statements, insert entries then delete entries.
        for (sign, tidx) in [
            (UpdateSign::Insert, disp.insert),
            (UpdateSign::Delete, disp.delete),
        ] {
            let Some(tidx) = tidx else { continue };
            if !run.entries().iter().any(|e| e.sign() == Some(sign)) {
                continue;
            }
            let trigger = &program.triggers[tidx as usize];
            let kernels = self.kernels_for(program, tidx);
            for (j, stmt) in trigger.statements.iter().enumerate() {
                if stmt.op != StmtOp::Increment {
                    continue;
                }
                self.set_counter_slot(tidx, j);
                let st0 = self.armed_instant();
                let res = match flat_get(kernels, j) {
                    Some(k) => self.increment_compiled_over(stmt, k, run, sign, report),
                    None => self.increment_interp_over(stmt, trigger, run, sign, report),
                };
                if self.tel.is_some() && res.is_ok() {
                    // `batch.segs` still holds this statement's entry
                    // boundaries after the buffered apply.
                    let rows = segs_rows(&self.batch.segs);
                    self.note_rows(rows);
                    self.note_stmt(st0, &stmt.target, rows);
                }
                if let Err(e) = res {
                    // Statement-level failure (missing target view): program
                    // corruption rather than a poison event. The buffered
                    // rows were discarded; fail the sign's remaining entries
                    // so the base-update and `:=` phases skip them — the
                    // per-event path would likewise die before its base
                    // update.
                    for (ei, entry) in run.entries().iter().enumerate() {
                        if !self.batch.failed[ei] && entry.sign() == Some(sign) {
                            self.batch.failed[ei] = true;
                            report.failed_events += entry.events as u64;
                        }
                    }
                    report.first_error.get_or_insert(e);
                }
            }
        }

        // Phase 2: one base-update pass over the surviving entries.
        self.apply_base_run(run, true);

        // Phase 3: re-evaluation statements fire once, bound to the run's
        // last event — the firing whose output survives per-event processing.
        let Some((sign, last_idx)) = run.last_event_index() else {
            return;
        };
        if self.batch.failed[last_idx] {
            // The binding event failed its increments; per-event it would not
            // have reached its `:=` phase either.
            return;
        }
        let tidx = match sign {
            UpdateSign::Insert => disp.insert,
            UpdateSign::Delete => disp.delete,
        };
        let Some(tidx) = tidx else { return };
        let trigger = &program.triggers[tidx as usize];
        if !trigger.statements.iter().any(|s| s.op == StmtOp::Replace) {
            return;
        }
        let key = run.entries()[last_idx].key.clone();
        let kernels = self.kernels_for(program, tidx);
        let mut bindings: Option<Bindings> = None;
        for (j, stmt) in trigger.statements.iter().enumerate() {
            if stmt.op != StmtOp::Replace {
                continue;
            }
            self.set_counter_slot(tidx, j);
            if let Err(e) = self.exec_dispatch(
                stmt,
                flat_get(kernels, j),
                key.as_slice(),
                trigger,
                &mut bindings,
            ) {
                // Mirror the single-event contract: the binding event counts
                // as failed and its remaining statements are skipped.
                report.failed_events += 1;
                report.first_error.get_or_insert(e);
                break;
            }
        }
    }

    /// Batch-delta execution of one run (see the module docs): phase one
    /// evaluates every incremental statement over the run's entries against
    /// the pre-run state and the second-order correction statements once
    /// against the run's delta, buffering all rows; phase two applies the
    /// buffers in statement order followed by the base update. Returns the
    /// strategy that actually executed: any phase-one error discards the
    /// (still unapplied) buffers — the database is untouched at that point —
    /// and replays the whole run entry-major, which reproduces per-event
    /// poison semantics exactly and does its own failure accounting.
    fn run_batch_delta(
        &mut self,
        program: &TriggerProgram,
        disp: DispatchEntry,
        run: &RelationDelta,
        report: &mut BatchReport,
    ) -> BatchStrategy {
        let corr = disp
            .correction
            .map(|i| &program.batch_corrections[i as usize]);
        // Cost gate for quadratic queries: the pair correction joins the run's
        // delta with itself, so its work grows as O(firings²), while firing
        // the run entry-major pays O(firings × |read maps|) scanning the
        // maintained maps once per event. The break-even is therefore
        // firings ≈ observed read-map entries: below it the correction can no
        // longer win against cheap per-event statements; above it (large
        // maintained state, as in bsv's long runs) per-event scans dominate
        // and batch-delta stays on. Every input — the firing count and the
        // map sizes — is engine state reproduced bit-for-bit by WAL replay,
        // so recovery picks the identical strategy sequence. Relations whose
        // maps are all linear in the relation (empty correction set) never
        // hit the gate.
        const MIN_CORRECTION_FIRINGS: u64 = 3;
        if corr.is_some_and(|c| !c.statements.is_empty()) {
            let firings: u64 = run.entries().iter().map(|e| e.firings() as u64).sum();
            let observed_entries: u64 = disp
                .correction
                .and_then(|ci| self.corr_read_maps.get(ci as usize))
                .map(|maps| {
                    maps.iter()
                        .map(|n| self.db.view(n).map_or(0, |v| v.len() as u64))
                        .sum()
                })
                .unwrap_or(0);
            if firings > MIN_CORRECTION_FIRINGS.max(observed_entries) {
                self.run_entry_major(program, disp, run, report);
                return BatchStrategy::EntryMajor;
            }
        }
        if self.collect_batch_delta(program, disp, corr, run).is_err() {
            self.bd.live = 0;
            self.run_entry_major(program, disp, run, report);
            return BatchStrategy::EntryMajor;
        }
        // Apply phase. Targets were verified during collection, so these
        // applies cannot fail; surface a defensive error anyway.
        let mut first_err: Option<RuntimeError> = None;
        {
            let Engine {
                db,
                changes,
                bd,
                tel,
                ..
            } = self;
            for ds in &bd.stmts[..bd.live] {
                let target = if ds.tidx == u16::MAX {
                    let corr = corr.expect("correction rows imply a correction set");
                    &corr.statements[ds.stmt as usize].target
                } else {
                    &program.triggers[ds.tidx as usize].statements[ds.stmt as usize].target
                };
                if let Err(e) = apply_buffered_statement(db, changes, target, &ds.segs, &ds.rows) {
                    first_err.get_or_insert(e);
                } else if let Some(ts) = tel.as_deref_mut() {
                    // Rows are credited at apply time (not collection), so a
                    // run that falls back entry-major never double-counts.
                    let slot = if ds.tidx == u16::MAX {
                        disp.correction.and_then(|ci| {
                            ts.corr_slot
                                .get(ci as usize)
                                .and_then(|v| v.get(ds.stmt as usize))
                                .copied()
                        })
                    } else {
                        ts.stmt_slot
                            .get(ds.tidx as usize)
                            .and_then(|v| v.get(ds.stmt as usize))
                            .copied()
                    };
                    if let Some(slot) = slot {
                        if let Some(r) = ts.pending_rows.get_mut(slot as usize) {
                            *r += segs_rows(&ds.segs);
                        }
                    }
                }
            }
        }
        self.bd.live = 0;
        self.apply_base_run(run, false);
        if let Some(e) = first_err {
            report.failed_events += run.events();
            report.first_error.get_or_insert(e);
        }
        BatchStrategy::BatchDelta
    }

    /// Phase one of [`Engine::run_batch_delta`]: buffer every incremental
    /// statement's rows (evaluated against the pre-run state) and then the
    /// correction statements' rows (evaluated once against the run's delta
    /// through a [`DeltaOverlay`]), touching no view. On `Err` the database
    /// is guaranteed untouched so the caller can fall back wholesale.
    fn collect_batch_delta(
        &mut self,
        program: &TriggerProgram,
        disp: DispatchEntry,
        corr: Option<&BatchCorrection>,
        run: &RelationDelta,
    ) -> Result<(), RuntimeError> {
        self.bd.live = 0;
        for (sign, tidx) in [
            (UpdateSign::Insert, disp.insert),
            (UpdateSign::Delete, disp.delete),
        ] {
            let Some(tidx) = tidx else { continue };
            if !run.entries().iter().any(|e| e.sign() == Some(sign)) {
                continue;
            }
            let trigger = &program.triggers[tidx as usize];
            let kernels = self.kernels_for(program, tidx);
            for (j, stmt) in trigger.statements.iter().enumerate() {
                debug_assert_eq!(
                    stmt.op,
                    StmtOp::Increment,
                    "batch-delta dispatch requires increment-only triggers"
                );
                if !self.db.contains(&stmt.target) {
                    return Err(RuntimeError::UnknownView(stmt.target.clone()));
                }
                self.set_counter_slot(tidx, j);
                let st0 = self.armed_instant();
                match flat_get(kernels, j) {
                    Some(k) => self.collect_compiled_over(k, run, sign, tidx, j as u16)?,
                    None => self.collect_interp_over(stmt, trigger, run, sign, tidx, j as u16)?,
                }
                if st0.is_some() {
                    let rows = self
                        .bd
                        .stmts
                        .get(self.bd.live.wrapping_sub(1))
                        .map_or(0, |ds| segs_rows(&ds.segs));
                    self.note_stmt(st0, &stmt.target, rows);
                }
            }
        }
        let Some(corr) = corr else { return Ok(()) };
        if corr.statements.is_empty() {
            return Ok(());
        }
        // With at most one total firing there is no intra-batch interaction:
        // the second-order term is exactly zero (its pair and diagonal parts
        // cancel), so it is skipped — this also keeps the batch-of-1 path
        // free of overlay setup.
        let firings: u64 = run.entries().iter().map(|e| e.firings() as u64).sum();
        if firings <= 1 {
            return Ok(());
        }
        let signed = delta_relation_name(run.relation());
        let absolute = delta_abs_relation_name(run.relation());
        let aligned = corr.compiled.len() == corr.statements.len();
        for (j, stmt) in corr.statements.iter().enumerate() {
            if !self.db.contains(&stmt.target) {
                return Err(RuntimeError::UnknownView(stmt.target.clone()));
            }
            let kernel = if self.force_interpreter || !aligned {
                None
            } else {
                flat_get(&corr.compiled, j)
            };
            if let (Some(ts), Some(ci)) = (self.tel.as_deref(), disp.correction) {
                if let Some(&slot) = ts.corr_slot.get(ci as usize).and_then(|v| v.get(j)) {
                    if slot != u32::MAX {
                        self.kernel.counter_slot = slot as usize;
                    }
                }
            }
            let st0 = self.armed_instant();
            match kernel {
                Some(k) => {
                    self.collect_correction_compiled(k, run, &signed, &absolute, j as u16)?
                }
                None => self.collect_correction_interp(stmt, run, &signed, &absolute, j as u16)?,
            }
            if let Some(ts) = self.tel.as_deref_mut() {
                if ts.armed && ts.runs_live > 0 {
                    ts.runs[ts.runs_live - 1].corrections += 1;
                }
                if let Some(ci) = disp.correction {
                    if let Some(&slot) = ts.corr_slot.get(ci as usize).and_then(|v| v.get(j)) {
                        if let Some(c) = ts.pending_corrections.get_mut(slot as usize) {
                            *c += 1;
                        }
                    }
                }
            }
            if st0.is_some() {
                let rows = self
                    .bd
                    .stmts
                    .get(self.bd.live.wrapping_sub(1))
                    .map_or(0, |ds| segs_rows(&ds.segs));
                self.note_stmt(st0, &stmt.target, rows);
            }
        }
        Ok(())
    }

    /// Buffer one compiled incremental statement's rows over all of a run's
    /// entries of one sign without applying them — the batch-delta twin of
    /// [`Engine::increment_compiled_over`]. Any kernel error aborts the whole
    /// collection (the caller falls back entry-major).
    fn collect_compiled_over(
        &mut self,
        kernel: &CompiledStmt,
        run: &RelationDelta,
        sign: UpdateSign,
        tidx: u16,
        stmt_j: u16,
    ) -> Result<(), RuntimeError> {
        let Engine {
            db,
            kernel: state,
            bd,
            stats,
            ..
        } = self;
        let slot = bd.acquire(tidx, stmt_j);
        state.prepare(kernel);
        state.set_run_entries(run.entries().len());
        let src = CachedSource::new(db);
        let mut first = true;
        for entry in run.entries() {
            if entry.sign() != Some(sign) {
                continue;
            }
            stats.statements += 1;
            let start = state.out.len();
            for &s in &kernel.used_trigger_slots {
                state.frame[s as usize] = entry.key[s as usize].clone();
            }
            match kernel.execute_batch_entry(&src, state, first) {
                Ok(()) => {
                    first = false;
                    slot.segs.push(Seg {
                        start,
                        end: state.out.len(),
                        reps: entry.firings(),
                    });
                }
                Err(e) => {
                    state.out.clear();
                    return Err(RuntimeError::Eval(e));
                }
            }
        }
        // Hand the collected rows to the deferred slot; the (cleared) old
        // slot buffer becomes the kernel's next row buffer.
        std::mem::swap(&mut slot.rows, &mut state.out);
        Ok(())
    }

    /// The interpreter twin of [`Engine::collect_compiled_over`].
    fn collect_interp_over(
        &mut self,
        stmt: &Statement,
        trigger: &Trigger,
        run: &RelationDelta,
        sign: UpdateSign,
        tidx: u16,
        stmt_j: u16,
    ) -> Result<(), RuntimeError> {
        let Engine {
            db,
            scratch,
            batch,
            bd,
            stats,
            ..
        } = self;
        let slot = bd.acquire(tidx, stmt_j);
        batch.bindings.clear();
        for entry in run.entries() {
            if entry.sign() != Some(sign) {
                continue;
            }
            stats.statements += 1;
            for (var, value) in trigger.trigger_vars.iter().zip(entry.key.iter()) {
                batch.bindings.set(var, value.clone());
            }
            let start = slot.rows.len();
            interp_statement_rows(&*db, scratch, &mut batch.bindings, stmt, &mut slot.rows)?;
            slot.segs.push(Seg {
                start,
                end: slot.rows.len(),
                reps: entry.firings(),
            });
        }
        Ok(())
    }

    /// Buffer one compiled second-order correction statement's rows: the
    /// kernel runs once per run (corrections carry no trigger variables) with
    /// the delta pseudo-relations resolved by a [`DeltaOverlay`] over the
    /// same snapshot-cached source the first-order pass reads.
    fn collect_correction_compiled(
        &mut self,
        kernel: &CompiledStmt,
        run: &RelationDelta,
        signed: &str,
        absolute: &str,
        stmt_j: u16,
    ) -> Result<(), RuntimeError> {
        let Engine {
            db,
            kernel: state,
            bd,
            stats,
            ..
        } = self;
        let slot = bd.acquire(u16::MAX, stmt_j);
        stats.statements += 1;
        state.prepare(kernel);
        let cached = CachedSource::new(db);
        let overlay = DeltaOverlay::new(&cached, run, signed, absolute);
        if let Err(e) = kernel.execute(&overlay, state) {
            state.out.clear();
            return Err(RuntimeError::Eval(e));
        }
        slot.segs.push(Seg {
            start: 0,
            end: state.out.len(),
            reps: 1,
        });
        std::mem::swap(&mut slot.rows, &mut state.out);
        Ok(())
    }

    /// The interpreter twin of [`Engine::collect_correction_compiled`].
    fn collect_correction_interp(
        &mut self,
        stmt: &Statement,
        run: &RelationDelta,
        signed: &str,
        absolute: &str,
        stmt_j: u16,
    ) -> Result<(), RuntimeError> {
        let Engine {
            db,
            scratch,
            batch,
            bd,
            stats,
            ..
        } = self;
        let slot = bd.acquire(u16::MAX, stmt_j);
        stats.statements += 1;
        batch.bindings.clear();
        let overlay = DeltaOverlay::new(&*db, run, signed, absolute);
        interp_statement_rows(&overlay, scratch, &mut batch.bindings, stmt, &mut slot.rows)?;
        slot.segs.push(Seg {
            start: 0,
            end: slot.rows.len(),
            reps: 1,
        });
        Ok(())
    }

    /// The compiled kernels for a trigger, when present, aligned with its
    /// statement list and not overridden by the interpreter escape hatch.
    fn kernels_for<'p>(
        &self,
        program: &'p TriggerProgram,
        tidx: u16,
    ) -> &'p [Option<CompiledStmt>] {
        if self.force_interpreter {
            return &[];
        }
        let trigger = &program.triggers[tidx as usize];
        program
            .compiled
            .get(tidx as usize)
            .map(|c| c.stmts.as_slice())
            .filter(|s| s.len() == trigger.statements.len())
            .unwrap_or(&[])
    }

    /// Drive one compiled incremental statement over all of a run's entries of
    /// one sign: prelude + loop-invariant fused scans once, rows buffered with
    /// entry boundaries, then one buffered apply (single target resolution,
    /// change-log entry and snapshot-cache bump).
    fn increment_compiled_over(
        &mut self,
        stmt: &Statement,
        kernel: &CompiledStmt,
        run: &RelationDelta,
        sign: UpdateSign,
        report: &mut BatchReport,
    ) -> Result<(), RuntimeError> {
        let Engine {
            db,
            kernel: state,
            batch,
            stats,
            changes,
            ..
        } = self;
        batch.segs.clear();
        state.prepare(kernel);
        state.set_run_entries(run.entries().len());
        // The whole entries pass is read-only (rows are buffered), so probe
        // and scan targets can be resolved once per name for the batch.
        let src = CachedSource::new(db);
        let mut first = true;
        for (ei, entry) in run.entries().iter().enumerate() {
            if batch.failed[ei] || entry.sign() != Some(sign) {
                continue;
            }
            stats.statements += 1;
            let start = state.out.len();
            for &slot in &kernel.used_trigger_slots {
                state.frame[slot as usize] = entry.key[slot as usize].clone();
            }
            match kernel.execute_batch_entry(&src, state, first) {
                Ok(()) => {
                    first = false;
                    batch.segs.push(Seg {
                        start,
                        end: state.out.len(),
                        reps: entry.firings(),
                    });
                }
                Err(e) => {
                    // Nothing of this entry's statement is applied (rows are
                    // dropped), matching the per-event all-or-nothing apply.
                    state.out.truncate(start);
                    batch.failed[ei] = true;
                    report.failed_events += entry.events as u64;
                    report.first_error.get_or_insert(RuntimeError::Eval(e));
                }
            }
        }
        // `src` (immutable borrow of `db`) ends here; the apply needs `&mut`.
        let _ = src;
        let res = apply_buffered_statement(db, changes, &stmt.target, &batch.segs, &state.out);
        state.out.clear();
        res
    }

    /// The interpreter twin of [`Engine::increment_compiled_over`]: same entry
    /// loop, same buffered apply, with the right-hand side evaluated by the
    /// AST evaluator — keeping the two paths oracles of each other on the
    /// batch path too.
    fn increment_interp_over(
        &mut self,
        stmt: &Statement,
        trigger: &Trigger,
        run: &RelationDelta,
        sign: UpdateSign,
        report: &mut BatchReport,
    ) -> Result<(), RuntimeError> {
        let Engine {
            db,
            scratch,
            batch,
            stats,
            changes,
            ..
        } = self;
        batch.segs.clear();
        batch.rows.clear();
        batch.bindings.clear();
        for (ei, entry) in run.entries().iter().enumerate() {
            if batch.failed[ei] || entry.sign() != Some(sign) {
                continue;
            }
            stats.statements += 1;
            for (var, value) in trigger.trigger_vars.iter().zip(entry.key.iter()) {
                batch.bindings.set(var, value.clone());
            }
            let start = batch.rows.len();
            let res =
                interp_statement_rows(&*db, scratch, &mut batch.bindings, stmt, &mut batch.rows);
            match res {
                Ok(()) => batch.segs.push(Seg {
                    start,
                    end: batch.rows.len(),
                    reps: entry.firings(),
                }),
                Err(e) => {
                    batch.rows.truncate(start);
                    batch.failed[ei] = true;
                    report.failed_events += entry.events as u64;
                    report.first_error.get_or_insert(e);
                }
            }
        }
        let res = apply_buffered_statement(db, changes, &stmt.target, &batch.segs, &batch.rows);
        batch.rows.clear();
        res
    }

    /// One base-update pass for a whole run: each surviving entry's net
    /// multiplicity is applied in one write (exact — net multiplicities are
    /// integers). `respect_failed` skips entries whose trigger work failed,
    /// mirroring the per-event path where a poison event never reaches its
    /// base update.
    fn apply_base_run(&mut self, run: &RelationDelta, respect_failed: bool) {
        let Engine {
            db, changes, batch, ..
        } = self;
        let Some(view) = db.view_mut(run.relation()) else {
            return;
        };
        let mut change = changes.as_mut().map(|c| c.entry(run.relation()));
        let failed: &[bool] = &batch.failed;
        let rows = run.entries().iter().enumerate().filter_map(|(ei, e)| {
            if e.mult == 0.0 || (respect_failed && failed[ei]) {
                None
            } else {
                Some((&e.key, e.mult))
            }
        });
        view.add_rows(rows, &mut |k| {
            if let Some(c) = change.as_mut() {
                c.keys.insert(k.clone(), ());
            }
        });
    }

    /// Apply one single-tuple base update (the entry-major / no-trigger path).
    fn apply_base_raw(&mut self, relation: &str, key: &Tuple, mult: f64) {
        if let Some(view) = self.db.view_mut(relation) {
            view.add(key.clone(), mult);
            if let Some(log) = self.changes.as_mut() {
                log.record_key(relation, key.clone());
            }
        }
    }

    /// Route one statement to its compiled kernel or the interpreter
    /// (single-firing path).
    fn exec_dispatch(
        &mut self,
        stmt: &Statement,
        kernel: Option<&CompiledStmt>,
        tuple: &[Value],
        trigger: &Trigger,
        bindings: &mut Option<Bindings>,
    ) -> Result<(), RuntimeError> {
        match kernel {
            Some(k) => self.exec_compiled(stmt, k, tuple),
            None => {
                let ctx = bindings.get_or_insert_with(|| {
                    let mut b = Bindings::with_capacity(trigger.trigger_vars.len());
                    for (var, value) in trigger.trigger_vars.iter().zip(tuple.iter()) {
                        b.insert(var.clone(), value.clone());
                    }
                    b
                });
                self.exec_statement(stmt, ctx)
            }
        }
    }

    /// Execute a statement through its compiled kernel: seed the frame from
    /// the event tuple, run the plan into the reusable row buffer, then apply
    /// the buffered rows to the target map.
    fn exec_compiled(
        &mut self,
        stmt: &Statement,
        kernel: &CompiledStmt,
        tuple: &[Value],
    ) -> Result<(), RuntimeError> {
        self.stats.statements += 1;
        {
            let Engine {
                db, kernel: state, ..
            } = self;
            state.prepare(kernel);
            for &slot in &kernel.used_trigger_slots {
                state.frame[slot as usize] = tuple[slot as usize].clone();
            }
            kernel.execute(db, state).map_err(RuntimeError::Eval)?;
        }
        let Engine {
            db,
            kernel: state,
            changes,
            tel,
            ..
        } = self;
        if let Some(ts) = tel.as_deref_mut() {
            if let Some(r) = ts.pending_rows.get_mut(state.counter_slot) {
                *r += state.out.len() as u64;
            }
        }
        let target = db
            .view_mut(&stmt.target)
            .ok_or_else(|| RuntimeError::UnknownView(stmt.target.clone()))?;
        if stmt.op == StmtOp::Replace {
            target.clear();
            if let Some(log) = changes.as_mut() {
                log.record_clear(&stmt.target);
            }
        }
        for (key, mult) in state.out.drain(..) {
            if mult == 0.0 {
                // A collapsed row that cancelled to zero: the interpreter's
                // result GMR drops such entries, so neither the change log
                // nor the target should see the key.
                continue;
            }
            if let Some(log) = changes.as_mut() {
                log.record_key(&stmt.target, key.clone());
            }
            target.add(key, mult);
        }
        Ok(())
    }

    fn exec_statement(
        &mut self,
        stmt: &Statement,
        bindings: &mut Bindings,
    ) -> Result<(), RuntimeError> {
        self.stats.statements += 1;
        let result = {
            let Engine { db, scratch, .. } = self;
            eval_with_scratch(&stmt.rhs, &*db, bindings, scratch)?
        };
        let target = self
            .db
            .view_mut(&stmt.target)
            .ok_or_else(|| RuntimeError::UnknownView(stmt.target.clone()))?;
        if stmt.op == StmtOp::Replace {
            target.clear();
            if let Some(log) = self.changes.as_mut() {
                log.record_clear(&stmt.target);
            }
        }
        if result.is_empty() {
            return Ok(());
        }
        if let Some(ts) = self.tel.as_deref_mut() {
            if let Some(r) = ts.pending_rows.get_mut(self.kernel.counter_slot) {
                *r += result.len() as u64;
            }
        }
        let key_sources = resolve_key_sources(stmt, bindings, result.schema())?;
        for (row, mult) in result.iter() {
            let key: Tuple = key_sources
                .iter()
                .map(|s| match s {
                    Ok(v) => v.clone(),
                    Err(i) => row[*i].clone(),
                })
                .collect();
            if let Some(log) = self.changes.as_mut() {
                log.record_key(&stmt.target, key.clone());
            }
            target.add(key, mult);
        }
        Ok(())
    }

    /// Snapshot a query result as a GMR over its output columns.
    pub fn result(&self, query: &str) -> Result<Gmr, RuntimeError> {
        let qr = self
            .program
            .results
            .iter()
            .find(|r| r.name == query)
            .ok_or_else(|| RuntimeError::UnknownQuery(query.to_string()))?;
        match &qr.access {
            ResultAccess::Map(name) => self
                .db
                .view(name)
                .map(|v| v.to_gmr())
                .ok_or_else(|| RuntimeError::UnknownView(name.clone())),
            ResultAccess::Computed { expr, .. } => {
                eval_with(expr, &self.db, &mut Bindings::new()).map_err(RuntimeError::from)
            }
        }
    }

    /// Direct access to a view's contents (for tests and debugging).
    pub fn view(&self, name: &str) -> Option<Gmr> {
        self.db.view(name).map(|v| v.to_gmr())
    }

    /// Approximate memory footprint of all views and stored relations, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.db.approx_bytes()
    }

    /// Total number of entries across all views and stored relations.
    pub fn total_entries(&self) -> usize {
        self.db
            .names()
            .filter_map(|n| self.db.view(n).map(|v| v.len()))
            .sum()
    }

    /// Runtime statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Structured EXPLAIN of the compiled trigger program: one operator tree
    /// per statement plus the batch-dispatch decision (and its reason) per
    /// relation. With telemetry attached the tree carries live per-view
    /// counters — EXPLAIN ANALYZE — after an implicit
    /// [`Engine::flush_telemetry`]; without telemetry the `analyze` blocks
    /// are absent. Render with [`ProgramExplain::render_text`] or
    /// [`ProgramExplain::render_json`].
    ///
    /// [`ProgramExplain::render_text`]: dbtoaster_compiler::ProgramExplain::render_text
    /// [`ProgramExplain::render_json`]: dbtoaster_compiler::ProgramExplain::render_json
    pub fn explain(&mut self) -> dbtoaster_compiler::ProgramExplain {
        self.flush_telemetry();
        let mut ex = dbtoaster_compiler::explain(&self.program, self.forced_strategy);
        if let Some(ts) = self.tel.as_deref() {
            use std::sync::atomic::Ordering::Relaxed;
            ex.attach_stats(|name| {
                let i = ts.map_names.iter().position(|n| n == name)?;
                let v = &ts.views[i];
                Some(dbtoaster_compiler::ViewStats {
                    rows_written: v.rows_written.load(Relaxed),
                    probes: v.probes.load(Relaxed),
                    scans: v.scans.load(Relaxed),
                    entries_scanned: v.entries_scanned.load(Relaxed),
                    fused_scans: v.fused_scans.load(Relaxed),
                    banded_hits: v.banded_hits.load(Relaxed),
                    banded_bails: v.banded_bails.load(Relaxed),
                    correction_firings: v.correction_firings.load(Relaxed),
                    map_size: v.map_size.load(Relaxed),
                })
            });
        }
        ex
    }

    /// Attach a [`Telemetry`] handle. With an enabled handle the engine
    /// records whole-batch latency, per-strategy kernel timings, per-view
    /// work counters and slow-batch traces into it — all buffered in plain
    /// integers and folded into the shared atomics every
    /// `TELEMETRY_FLUSH_BATCHES` (64) batches (or on
    /// [`Engine::flush_telemetry`]).
    /// A disabled handle detaches: the hot path goes back to one predictable
    /// branch per batch, allocation-free as before.
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        if !tel.is_enabled() {
            self.tel = None;
            self.kernel.counter_slot = 0;
            return;
        }
        let map_names: Vec<String> = self.db.names().map(|n| n.to_string()).collect();
        let views: Vec<Arc<ViewCounters>> = map_names
            .iter()
            .map(|n| tel.view(n).expect("enabled handle"))
            .collect();
        let slot_of = |name: &str| -> u32 {
            map_names
                .iter()
                .position(|n| n == name)
                .map_or(u32::MAX, |i| i as u32)
        };
        let stmt_slot: Vec<Vec<u32>> = self
            .program
            .triggers
            .iter()
            .map(|t| t.statements.iter().map(|s| slot_of(&s.target)).collect())
            .collect();
        let corr_slot: Vec<Vec<u32>> = self
            .program
            .batch_corrections
            .iter()
            .map(|c| c.statements.iter().map(|s| slot_of(&s.target)).collect())
            .collect();
        let (slow_threshold_nanos, arm_min_events) = {
            let c = tel.config().expect("enabled handle");
            (
                c.slow_batch_threshold.as_nanos().min(u64::MAX as u128) as u64,
                c.trace_arm_min_events,
            )
        };
        // One kernel counter block per view; reset anything a previous
        // attachment left behind so counts start from zero.
        self.kernel.ensure_counter_slots(map_names.len());
        for c in &self.kernel.counter_slots {
            let _ = c.take();
        }
        self.kernel.counter_slot = 0;
        let n = map_names.len();
        self.tel = Some(Box::new(TelemetryState {
            tel,
            batch_hist: LocalHistogram::new(),
            stage_hists: [
                LocalHistogram::new(),
                LocalHistogram::new(),
                LocalHistogram::new(),
            ],
            views,
            map_names,
            pending_rows: vec![0; n],
            pending_corrections: vec![0; n],
            stmt_slot,
            corr_slot,
            flushed_events: self.stats.events,
            flushed_batches: self.stats.delta_batches,
            slow_threshold_nanos,
            arm_min_events,
            armed: false,
            runs: Vec::new(),
            runs_live: 0,
        }));
    }

    /// The attached telemetry handle, if any.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.tel.as_ref().map(|t| &t.tel)
    }

    /// Fold all locally buffered telemetry (latency histograms, per-view
    /// counters, kernel work counters, observed map sizes, event totals)
    /// into the shared [`Telemetry`] atomics. Allocation-free; runs
    /// automatically every `TELEMETRY_FLUSH_BATCHES` (64) batches, and callers
    /// (the serving writer, the bench harness) invoke it before reading a
    /// snapshot.
    pub fn flush_telemetry(&mut self) {
        let Some(ts) = self.tel.as_deref_mut() else {
            return;
        };
        use std::sync::atomic::Ordering::Relaxed;
        ts.batch_hist
            .flush_into(ts.tel.batch_hist().expect("enabled handle"));
        for (i, h) in ts.stage_hists.iter_mut().enumerate() {
            h.flush_into(
                ts.tel
                    .stage_hist(TelemetryState::stage_of(i))
                    .expect("enabled handle"),
            );
        }
        for (i, view) in ts.views.iter().enumerate() {
            if let Some(c) = self.kernel.counter_slots.get(i) {
                let w = c.take();
                if w.probes
                    | w.scans
                    | w.entries_scanned
                    | w.fused_scans
                    | w.banded_hits
                    | w.banded_bails
                    != 0
                {
                    view.probes.fetch_add(w.probes, Relaxed);
                    view.scans.fetch_add(w.scans, Relaxed);
                    view.entries_scanned.fetch_add(w.entries_scanned, Relaxed);
                    view.fused_scans.fetch_add(w.fused_scans, Relaxed);
                    view.banded_hits.fetch_add(w.banded_hits, Relaxed);
                    view.banded_bails.fetch_add(w.banded_bails, Relaxed);
                }
            }
            let rows = std::mem::take(&mut ts.pending_rows[i]);
            if rows != 0 {
                view.rows_written.fetch_add(rows, Relaxed);
            }
            let corr = std::mem::take(&mut ts.pending_corrections[i]);
            if corr != 0 {
                view.correction_firings.fetch_add(corr, Relaxed);
            }
            if let Some(v) = self.db.view(&ts.map_names[i]) {
                view.map_size.store(v.len() as u64, Relaxed);
            }
        }
        ts.tel.add_events(
            self.stats.events - ts.flushed_events,
            self.stats.delta_batches - ts.flushed_batches,
        );
        ts.flushed_events = self.stats.events;
        ts.flushed_batches = self.stats.delta_batches;
    }

    /// Build a trace sample at the given stream fraction.
    pub fn sample(&self, fraction: f64) -> TraceSample {
        TraceSample {
            fraction,
            elapsed_secs: self.stats.busy.as_secs_f64(),
            refresh_rate: self.stats.refresh_rate(),
            memory_mb: self.memory_bytes() as f64 / (1024.0 * 1024.0),
        }
    }

    /// The sign multiplier helper re-exported for callers building events by hand.
    pub fn sign_multiplier(sign: UpdateSign) -> f64 {
        sign.multiplier()
    }
}

/// Apply one statement's buffered rows to its target map: a single target
/// resolution, change-log entry and snapshot-cache bump per (statement,
/// batch), shared by the compiled and interpreter batch twins. A missing
/// target view (program corruption — compiled programs always declare their
/// targets) applies nothing; the caller discards the buffers and fails the
/// affected entries.
fn apply_buffered_statement(
    db: &mut Database,
    changes: &mut Option<ChangeSet>,
    target_name: &str,
    segs: &[Seg],
    rows: &[(Tuple, f64)],
) -> Result<(), RuntimeError> {
    let target = db
        .view_mut(target_name)
        .ok_or_else(|| RuntimeError::UnknownView(target_name.to_string()))?;
    let mut change = changes.as_mut().map(|c| c.entry(target_name));
    let it = segs.iter().flat_map(|s| {
        let slice = &rows[s.start..s.end];
        (0..s.reps).flat_map(move |_| slice.iter().map(|(k, m)| (k, *m)))
    });
    target.add_rows(Coalesce::new(it), &mut |k| {
        if let Some(c) = change.as_mut() {
            c.keys.insert(k.clone(), ());
        }
    });
    Ok(())
}

/// Resolve each of a statement's key variables to its source — a trigger
/// binding (range restriction, `Ok`) or a result-column position (`Err`) —
/// once per evaluation, outside the row loop. Shared by the strict
/// interpreter path and its batch twin so the two cannot drift.
fn resolve_key_sources(
    stmt: &Statement,
    bindings: &Bindings,
    schema: &dbtoaster_gmr::Schema,
) -> Result<Vec<Result<Value, usize>>, RuntimeError> {
    stmt.key_vars
        .iter()
        .map(|kv| {
            if let Some(v) = bindings.get(kv) {
                Ok(Ok(v.clone()))
            } else if let Some(i) = schema.index_of(kv) {
                Ok(Err(i))
            } else {
                Err(RuntimeError::MissingKeyVariable {
                    statement: stmt.to_string(),
                    variable: kv.clone(),
                })
            }
        })
        .collect()
}

/// Coalesce consecutive same-key rows of a buffered application stream into
/// one write each. Driven over a whole batch, the entries of a run often hit
/// the same group keys (every entry, for a scalar aggregate), so this turns
/// O(entries) target-map writes per statement into O(distinct consecutive
/// keys). Summation is reassociated relative to per-event processing — exact
/// on integer weights, last-ulp on floats (the documented batch caveat); a
/// batch of one entry coalesces nothing beyond what the kernel sink already
/// did, keeping the batch-of-1 path bit-exact.
struct Coalesce<'a, I: Iterator<Item = (&'a Tuple, f64)>> {
    inner: std::iter::Peekable<I>,
}

impl<'a, I: Iterator<Item = (&'a Tuple, f64)>> Coalesce<'a, I> {
    fn new(inner: I) -> Self {
        Coalesce {
            inner: inner.peekable(),
        }
    }
}

impl<'a, I: Iterator<Item = (&'a Tuple, f64)>> Iterator for Coalesce<'a, I> {
    type Item = (&'a Tuple, f64);

    fn next(&mut self) -> Option<(&'a Tuple, f64)> {
        let (key, mut mult) = self.inner.next()?;
        while let Some(&(next_key, next_mult)) = self.inner.peek() {
            if next_key != key {
                break;
            }
            mult += next_mult;
            self.inner.next();
        }
        Some((key, mult))
    }
}

/// Evaluate one incremental statement for the interpreter batch paths,
/// appending `(key, multiplicity)` rows to `out` instead of touching the
/// target map (the caller applies them buffered). Generic over the relation
/// source so the batch-delta correction path can substitute a
/// [`DeltaOverlay`] for the plain database.
fn interp_statement_rows(
    src: &dyn RelationSource,
    scratch: &mut EvalScratch,
    bindings: &mut Bindings,
    stmt: &Statement,
    out: &mut Vec<(Tuple, f64)>,
) -> Result<(), RuntimeError> {
    let result = eval_with_scratch(&stmt.rhs, src, bindings, scratch)?;
    if result.is_empty() {
        return Ok(());
    }
    let key_sources = resolve_key_sources(stmt, bindings, result.schema())?;
    for (row, mult) in result.iter() {
        let key: Tuple = key_sources
            .iter()
            .map(|s| match s {
                Ok(v) => v.clone(),
                Err(i) => row[*i].clone(),
            })
            .collect();
        out.push((key, mult));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_agca::Expr;
    use dbtoaster_compiler::{compile, CompileMode, CompileOptions, QuerySpec, RelationMeta};

    fn catalog() -> Catalog {
        [
            RelationMeta::stream("R", ["A", "B"]),
            RelationMeta::stream("S", ["B", "C"]),
        ]
        .into_iter()
        .collect()
    }

    fn example1_query() -> QuerySpec {
        // Q = Sum[]( R(a,b) * S(c,d) ): count of the cross product (Example 1).
        QuerySpec {
            name: "Q".into(),
            out_vars: vec![],
            expr: Expr::agg_sum(
                Vec::<String>::new(),
                Expr::product_of([Expr::rel("R", ["a", "b"]), Expr::rel("S", ["c", "d"])]),
            ),
        }
    }

    fn long_tuple(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::long(v)).collect()
    }

    fn run_example1(mode: CompileMode) -> f64 {
        let program = compile(
            &[example1_query()],
            &catalog(),
            &CompileOptions::for_mode(mode),
        )
        .unwrap();
        let mut engine = Engine::new(program, &catalog());
        engine.init_static_views().unwrap();
        // ||R|| = 2, ||S|| = 3 as in the paper's example table, then the insert sequence
        // S, R, S, S.
        let events = vec![
            UpdateEvent::insert("R", long_tuple(&[1, 1])),
            UpdateEvent::insert("R", long_tuple(&[2, 2])),
            UpdateEvent::insert("S", long_tuple(&[1, 10])),
            UpdateEvent::insert("S", long_tuple(&[2, 20])),
            UpdateEvent::insert("S", long_tuple(&[3, 30])),
            UpdateEvent::insert("S", long_tuple(&[4, 40])),
            UpdateEvent::insert("R", long_tuple(&[3, 3])),
            UpdateEvent::insert("S", long_tuple(&[5, 50])),
            UpdateEvent::insert("S", long_tuple(&[6, 60])),
        ];
        engine.process_all(&events).unwrap();
        engine.result("Q").unwrap().scalar_value()
    }

    #[test]
    fn example1_sequence_matches_paper_table() {
        // After the full sequence: ||R|| = 3, ||S|| = 6, so Q = 18 (paper, time point 4).
        for mode in [
            CompileMode::HigherOrder,
            CompileMode::FirstOrder,
            CompileMode::NaiveViewlet,
            CompileMode::Reevaluate,
        ] {
            assert_eq!(run_example1(mode), 18.0, "mode {mode}");
        }
    }

    #[test]
    fn deletions_are_handled() {
        let program = compile(
            &[example1_query()],
            &catalog(),
            &CompileOptions::for_mode(CompileMode::HigherOrder),
        )
        .unwrap();
        let mut engine = Engine::new(program, &catalog());
        engine
            .process_all(&[
                UpdateEvent::insert("R", long_tuple(&[1, 1])),
                UpdateEvent::insert("S", long_tuple(&[7, 7])),
                UpdateEvent::insert("S", long_tuple(&[8, 8])),
                UpdateEvent::delete("S", long_tuple(&[7, 7])),
            ])
            .unwrap();
        assert_eq!(engine.result("Q").unwrap().scalar_value(), 1.0);
        assert_eq!(engine.stats().events, 4);
    }

    #[test]
    fn unknown_query_errors() {
        let program = compile(
            &[example1_query()],
            &catalog(),
            &CompileOptions::for_mode(CompileMode::HigherOrder),
        )
        .unwrap();
        let engine = Engine::new(program, &catalog());
        assert!(matches!(
            engine.result("Nope"),
            Err(RuntimeError::UnknownQuery(_))
        ));
    }

    #[test]
    fn event_arity_mismatch_detected() {
        let program = compile(
            &[example1_query()],
            &catalog(),
            &CompileOptions::for_mode(CompileMode::HigherOrder),
        )
        .unwrap();
        let mut engine = Engine::new(program, &catalog());
        let err = engine
            .process(&UpdateEvent::insert("R", long_tuple(&[1])))
            .unwrap_err();
        assert!(matches!(err, RuntimeError::EventArityMismatch { .. }));
        // A failed single event is not counted as applied.
        assert_eq!(engine.stats().events, 0);
    }

    #[test]
    fn stats_and_memory_accumulate() {
        let program = compile(
            &[example1_query()],
            &catalog(),
            &CompileOptions::for_mode(CompileMode::HigherOrder),
        )
        .unwrap();
        let mut engine = Engine::new(program, &catalog());
        let before = engine.memory_bytes();
        engine
            .process(&UpdateEvent::insert("R", long_tuple(&[1, 2])))
            .unwrap();
        assert!(engine.memory_bytes() >= before);
        let sample = engine.sample(0.5);
        assert_eq!(sample.fraction, 0.5);
        assert_eq!(engine.stats().events, 1);
        assert_eq!(engine.stats().delta_batches, 1);
        assert!(engine.total_entries() >= 1);
    }

    #[test]
    fn batch_processing_matches_per_event() {
        // The same stream (with a cancelling pair and a duplicate key) through
        // the per-event path and one big batch must land on identical views.
        let events = vec![
            UpdateEvent::insert("R", long_tuple(&[1, 1])),
            UpdateEvent::insert("R", long_tuple(&[1, 1])), // duplicate key
            UpdateEvent::insert("S", long_tuple(&[7, 7])),
            UpdateEvent::insert("S", long_tuple(&[8, 8])),
            UpdateEvent::delete("S", long_tuple(&[7, 7])), // cancels within batch
            UpdateEvent::insert("R", long_tuple(&[2, 5])),
        ];
        for mode in [
            CompileMode::HigherOrder,
            CompileMode::FirstOrder,
            CompileMode::NaiveViewlet,
            CompileMode::Reevaluate,
        ] {
            let program = compile(
                &[example1_query()],
                &catalog(),
                &CompileOptions::for_mode(mode),
            )
            .unwrap();
            let mut per_event = Engine::new(program.clone(), &catalog());
            per_event.process_all(&events).unwrap();

            let mut batched = Engine::new(program, &catalog());
            let batch = DeltaBatch::from_events(&events);
            let report = batched.process_batch(&batch);
            assert!(report.first_error.is_none(), "mode {mode}");
            assert_eq!(report.events, 6);
            assert_eq!(batched.stats().events, 6, "mode {mode}");
            assert!(
                batched.stats().batch_events_collapsed >= 2,
                "cancelling pair must be collapsed (mode {mode})"
            );
            assert_eq!(
                per_event.result("Q").unwrap().scalar_value(),
                batched.result("Q").unwrap().scalar_value(),
                "mode {mode}"
            );
            for name in per_event.db.names() {
                let a = per_event.view(name).unwrap();
                let b = batched.view(name).expect("same view set");
                assert!(a.equivalent(&b, 0.0), "view {name} differs in {mode}");
            }
        }
    }

    #[test]
    fn poison_event_mid_batch_keeps_its_slot_and_the_rest_applies() {
        let program = compile(
            &[example1_query()],
            &catalog(),
            &CompileOptions::for_mode(CompileMode::HigherOrder),
        )
        .unwrap();
        let mut engine = Engine::new(program, &catalog());
        let events = vec![
            UpdateEvent::insert("R", long_tuple(&[1, 1])),
            UpdateEvent::insert("R", long_tuple(&[9])), // arity mismatch: its own run
            UpdateEvent::insert("S", long_tuple(&[7, 7])),
        ];
        let batch = DeltaBatch::from_events(&events);
        let report = engine.process_batch(&batch);
        assert_eq!(report.events, 3);
        assert_eq!(report.failed_events, 1);
        assert!(matches!(
            report.first_error,
            Some(RuntimeError::EventArityMismatch { .. })
        ));
        // The good events around the poison one are fully applied.
        assert_eq!(engine.stats().events, 2);
        assert_eq!(engine.result("Q").unwrap().scalar_value(), 1.0);
    }
}
