//! The query engine: executes a compiled trigger program against a stream of updates.
//!
//! The engine owns the [`Database`] of views, stored base relations and static tables,
//! and processes one [`UpdateEvent`] at a time (Section 7.2 of the paper — DBToaster
//! refreshes views on every single-tuple update rather than batching). Per event the
//! execution order is:
//!
//! 1. all incremental (`+=`) statements of the matching trigger, which by construction
//!    read the *old* versions of the views they use;
//! 2. the update itself is applied to the stored base relation (if it is stored at all —
//!    full Higher-Order IVM usually does not need the base relations);
//! 3. all re-evaluation (`:=`) statements, which read the *new* versions.

use crate::store::Database;
use dbtoaster_agca::eval::{eval_with, eval_with_scratch, Bindings, EvalError, EvalScratch};
use dbtoaster_agca::plan::{CompiledStmt, KernelState};
use dbtoaster_agca::{UpdateEvent, UpdateSign};
use dbtoaster_compiler::{Catalog, ResultAccess, Statement, StmtOp, TriggerProgram};
use dbtoaster_gmr::{FastMap, Gmr, Tuple, Value};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Environment variable forcing the engine onto the AST-interpreter path even
/// when compiled kernels are available (`1`/`true`/`yes`; any other value or
/// absence leaves kernels enabled). The programmatic equivalent is
/// [`Engine::set_force_interpreter`].
///
/// **Durability caveat:** the two paths agree bit-for-bit on integer data but
/// may differ in the last ulp on floating-point aggregates (different
/// summation orders). A durable deployment should therefore keep the same
/// execution path across restarts: recovering a crashed compiled-path server
/// with the interpreter forced (or vice versa) reproduces float view state to
/// relative ~1e-15, not bit-exactly.
pub const FORCE_INTERPRETER_ENV: &str = "DBTOASTER_FORCE_INTERPRETER";

fn env_forces_interpreter() -> bool {
    std::env::var(FORCE_INTERPRETER_ENV)
        .map(|v| {
            let v = v.trim().to_ascii_lowercase();
            !v.is_empty() && v != "0" && v != "false" && v != "no"
        })
        .unwrap_or(false)
}

/// Kernel for statement `j`, when the trigger has one.
fn flat_get(kernels: &[Option<CompiledStmt>], j: usize) -> Option<&CompiledStmt> {
    kernels.get(j).and_then(|k| k.as_ref())
}

/// The keys of one view that were touched since the last [`Engine::take_changes`].
///
/// `cleared` is set when a `:=` statement wiped the view, in which case `keys`
/// only covers writes *after* the clear and a consumer should diff the view
/// against its previous snapshot wholesale.
#[derive(Clone, Debug, Default)]
pub struct ViewChange {
    /// The view was cleared by a re-evaluation statement.
    pub cleared: bool,
    /// Distinct keys written since the last drain (post-clear writes only when
    /// `cleared` is set). The unit value map is used as a cheap hash set.
    pub keys: FastMap<Tuple, ()>,
}

/// Changed-key log across all views, drained by [`Engine::take_changes`].
///
/// This is the hook the serving layer uses to turn statement-level writes into
/// per-query output deltas: after a batch, each changed key's old multiplicity
/// (previous snapshot) and new multiplicity (current snapshot) are compared.
#[derive(Clone, Debug, Default)]
pub struct ChangeSet {
    /// Per-view change records, keyed by view name.
    pub views: FastMap<String, ViewChange>,
}

impl ChangeSet {
    fn record_key(&mut self, view: &str, key: Tuple) {
        if let Some(c) = self.views.get_mut(view) {
            c.keys.insert(key, ());
        } else {
            let mut c = ViewChange::default();
            c.keys.insert(key, ());
            self.views.insert(view.to_string(), c);
        }
    }

    fn record_clear(&mut self, view: &str) {
        let c = self.views.entry(view.to_string()).or_default();
        c.cleared = true;
        c.keys.clear();
    }

    /// Are there no recorded changes?
    pub fn is_empty(&self) -> bool {
        self.views.is_empty()
    }

    /// Fold a newer change set into this one (`self` happened first). A newer
    /// clear supersedes older keys; otherwise key sets union.
    pub fn merge(&mut self, newer: ChangeSet) {
        for (view, change) in newer.views {
            match self.views.get_mut(&view) {
                None => {
                    self.views.insert(view, change);
                }
                Some(existing) => {
                    if change.cleared {
                        *existing = change;
                    } else {
                        existing.keys.extend(change.keys);
                    }
                }
            }
        }
    }
}

/// Errors raised while processing events.
#[derive(Clone, Debug, PartialEq)]
pub enum RuntimeError {
    /// Statement evaluation failed.
    Eval(EvalError),
    /// A statement targets a view that was never declared.
    UnknownView(String),
    /// A statement's key variable is neither bound by the trigger nor produced by the
    /// right-hand side.
    MissingKeyVariable { statement: String, variable: String },
    /// An event's tuple arity does not match the trigger's variables.
    EventArityMismatch {
        relation: String,
        expected: usize,
        actual: usize,
    },
    /// The named query is not part of the compiled program.
    UnknownQuery(String),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Eval(e) => write!(f, "evaluation error: {e}"),
            RuntimeError::UnknownView(v) => write!(f, "unknown view {v}"),
            RuntimeError::MissingKeyVariable {
                statement,
                variable,
            } => {
                write!(
                    f,
                    "key variable {variable} not available in statement {statement}"
                )
            }
            RuntimeError::EventArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "event for {relation} has {actual} values, trigger expects {expected}"
            ),
            RuntimeError::UnknownQuery(q) => write!(f, "unknown query {q}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<EvalError> for RuntimeError {
    fn from(e: EvalError) -> Self {
        RuntimeError::Eval(e)
    }
}

/// Runtime statistics: event counts, processing time and memory footprint.
///
/// The batch-level counters (`batches`, `snapshots_published`,
/// `subscriber_deltas`) stay zero on a plain single-threaded engine; the
/// serving layer fills them in and surfaces the merged view through
/// `ViewServer::stats()`.
#[derive(Clone, Debug)]
pub struct EngineStats {
    /// Events processed so far. On a plain engine only successfully applied
    /// events count; a *durable* serving writer also counts failed events,
    /// because each logged event owns a WAL sequence slot and the watermark
    /// must advance past a poison event for recovery to line up.
    pub events: u64,
    /// Statements executed so far.
    pub statements: u64,
    /// Total time spent inside `process`.
    pub busy: Duration,
    /// Wall-clock time of engine creation.
    pub started: Instant,
    /// Micro-batches drained by a serving writer loop.
    pub batches: u64,
    /// Snapshots published for concurrent readers.
    pub snapshots_published: u64,
    /// Output-delta records fanned out to subscribers (sum over subscribers).
    pub subscriber_deltas: u64,
    /// Bytes appended to the write-ahead log by a durable serving writer.
    pub wal_bytes_written: u64,
    /// Checkpoints written by a durable serving writer.
    pub checkpoints_taken: u64,
    /// Events replayed from the WAL when this engine was recovered from disk
    /// (0 for engines built fresh or restored purely from a checkpoint).
    pub recovery_replayed_events: u64,
    /// Number of trigger statements executing through compiled kernels
    /// (slot-addressed plans) rather than the AST interpreter. 0 when the
    /// program carries no kernels or the engine was forced onto the
    /// interpreter path (see [`FORCE_INTERPRETER_ENV`]).
    pub compiled_triggers: u64,
}

impl EngineStats {
    fn new() -> Self {
        EngineStats {
            events: 0,
            statements: 0,
            busy: Duration::ZERO,
            started: Instant::now(),
            batches: 0,
            snapshots_published: 0,
            subscriber_deltas: 0,
            wal_bytes_written: 0,
            checkpoints_taken: 0,
            recovery_replayed_events: 0,
            compiled_triggers: 0,
        }
    }

    /// Average events per drained micro-batch (0.0 when not serving).
    pub fn events_per_batch(&self) -> f64 {
        if self.batches > 0 {
            self.events as f64 / self.batches as f64
        } else {
            0.0
        }
    }

    /// Average view refresh rate (events per second of processing time), the metric of
    /// Figures 6 and 7.
    pub fn refresh_rate(&self) -> f64 {
        let secs = self.busy.as_secs_f64();
        if secs > 0.0 {
            self.events as f64 / secs
        } else {
            0.0
        }
    }
}

/// A point-in-time sample used by the trace experiments (Figures 8–10 and 13–18).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceSample {
    /// Fraction of the stream processed when the sample was taken.
    pub fraction: f64,
    /// Cumulative processing time in seconds.
    pub elapsed_secs: f64,
    /// Average refresh rate since the start (events / second).
    pub refresh_rate: f64,
    /// Approximate memory footprint of all views, in megabytes.
    pub memory_mb: f64,
}

/// The DBToaster runtime engine.
pub struct Engine {
    program: Arc<TriggerProgram>,
    db: Database,
    stats: EngineStats,
    /// Changed-key log, present only while change tracking is enabled.
    changes: Option<ChangeSet>,
    /// Reusable kernel execution state (frame, pattern buffers, scratch maps,
    /// row buffer) for the compiled trigger path — zero per-event allocation
    /// in steady state.
    kernel: KernelState,
    /// Interpreter scratch: memoized product orders + recycled pattern buffer
    /// for statements without compiled kernels (and the interpreter-forced
    /// mode).
    scratch: EvalScratch,
    /// Ignore compiled kernels and interpret every statement (differential
    /// testing / escape hatch; see [`FORCE_INTERPRETER_ENV`]).
    force_interpreter: bool,
}

impl Engine {
    /// Build an engine for a compiled program. `catalog` supplies the column names of
    /// stored base relations and static tables.
    pub fn new(program: TriggerProgram, catalog: &Catalog) -> Self {
        let mut db = Database::new();
        for m in &program.maps {
            db.declare(m.name.clone(), m.out_vars.iter().cloned());
        }
        for rel in program
            .stored_relations
            .iter()
            .chain(program.static_tables.iter())
        {
            if db.contains(rel) {
                continue;
            }
            let columns: Vec<String> = catalog
                .get(rel)
                .map(|r| r.columns.clone())
                .unwrap_or_default();
            db.declare(rel.clone(), columns);
        }
        let mut engine = Engine {
            program: Arc::new(program),
            db,
            stats: EngineStats::new(),
            changes: None,
            kernel: KernelState::new(),
            scratch: EvalScratch::default(),
            force_interpreter: false,
        };
        engine.set_force_interpreter(env_forces_interpreter());
        engine
    }

    /// Force (or un-force) the AST-interpreter path for every statement,
    /// ignoring compiled kernels. Used by differential tests and as an escape
    /// hatch; also settable via the [`FORCE_INTERPRETER_ENV`] environment
    /// variable at engine construction.
    pub fn set_force_interpreter(&mut self, force: bool) {
        self.force_interpreter = force;
        // Count only kernels the dispatcher will actually use: a trigger whose
        // kernel list is misaligned with its statement list falls back to the
        // interpreter wholesale (see `process`), and the stat must agree.
        self.stats.compiled_triggers = if force {
            0
        } else {
            self.program
                .triggers
                .iter()
                .zip(self.program.compiled.iter())
                .filter(|(t, c)| c.stmts.len() == t.statements.len())
                .map(|(_, c)| c.compiled_count() as u64)
                .sum()
        };
    }

    /// Is the engine on the interpreter-only path?
    pub fn force_interpreter(&self) -> bool {
        self.force_interpreter
    }

    /// Rebuild an engine from a checkpointed snapshot: every map is restored
    /// wholesale and the event counter resumes at `events_applied`, **without**
    /// re-running [`Engine::init_static_views`] — the snapshot already contains
    /// static tables and the views derived from them. This is the restore half
    /// of the durability layer's checkpoint/recovery protocol; replaying logged
    /// events `events_applied+1..` through [`Engine::process`] afterwards
    /// reproduces a never-restarted engine bit-for-bit.
    pub fn from_snapshot(
        program: TriggerProgram,
        catalog: &Catalog,
        maps: impl IntoIterator<Item = (String, Gmr)>,
        events_applied: u64,
    ) -> Self {
        let mut engine = Engine::new(program, catalog);
        for (name, gmr) in maps {
            if !engine.db.contains(&name) {
                // Present in the snapshot but not declared by the program: a
                // table that was declared on the fly by `load_table`.
                engine
                    .db
                    .declare(name.clone(), gmr.schema().columns().iter().cloned());
            }
            engine
                .db
                .view_mut(&name)
                .expect("declared above")
                .load_gmr(&gmr);
        }
        engine.stats.events = events_applied;
        engine
    }

    /// Enable or disable the changed-key log consumed by [`Engine::take_changes`].
    /// Off by default; costs one cheap key clone per view write when on.
    pub fn set_change_tracking(&mut self, enabled: bool) {
        if enabled {
            self.changes.get_or_insert_with(ChangeSet::default);
        } else {
            self.changes = None;
        }
    }

    /// Drain the changed-key log accumulated since the last call (empty when
    /// change tracking is disabled).
    pub fn take_changes(&mut self) -> ChangeSet {
        match self.changes.as_mut() {
            Some(c) => std::mem::take(c),
            None => ChangeSet::default(),
        }
    }

    /// A consistent point-in-time snapshot of every view and stored relation:
    /// name → GMR sharing the view's copy-on-write map. O(number of views).
    pub fn snapshot(&self) -> FastMap<String, Gmr> {
        self.db.snapshot()
    }

    /// Mutable access to the statistics (the serving layer records batch-level
    /// counters here).
    pub fn stats_mut(&mut self) -> &mut EngineStats {
        &mut self.stats
    }

    /// The compiled program this engine executes.
    pub fn program(&self) -> &TriggerProgram {
        &self.program
    }

    /// A shared handle to the compiled program (for callers that outlive the
    /// engine borrow, e.g. the serving layer's subscription resolver).
    pub fn program_shared(&self) -> Arc<TriggerProgram> {
        self.program.clone()
    }

    /// Load the contents of a static table (each row with multiplicity 1). Call
    /// [`Engine::init_static_views`] after all tables are loaded.
    pub fn load_table(&mut self, name: &str, rows: impl IntoIterator<Item = Vec<Value>>) {
        let mut rows = rows.into_iter();
        if !self.db.contains(name) {
            // Declare on the fly for tables that only appear in view definitions,
            // taking the arity from the first row.
            match rows.next() {
                Some(first) => {
                    self.db
                        .declare(name.to_string(), (0..first.len()).map(|i| format!("c{i}")));
                    self.db.view_mut(name).unwrap().add(first, 1.0);
                }
                None => return,
            }
        }
        let view = self.db.view_mut(name).expect("declared above");
        for r in rows {
            view.add(r, 1.0);
        }
    }

    /// Evaluate the definitions of views that depend only on static tables and load the
    /// results (the paper's handling of `Nation`, `Region` and the MDDB metadata).
    pub fn init_static_views(&mut self) -> Result<(), RuntimeError> {
        let program = self.program.clone();
        for m in &program.maps {
            if !m.init_from_tables {
                continue;
            }
            let result = eval_with(&m.definition, &self.db, &mut Bindings::new())?;
            if let Some(view) = self.db.view_mut(&m.name) {
                view.load_gmr(&result);
            }
        }
        Ok(())
    }

    /// Process a single update event, firing the matching trigger.
    ///
    /// Statements with compiled kernels execute through the slot-addressed
    /// plan path ([`dbtoaster_agca::plan`]); the rest (and everything, when
    /// the interpreter is forced) go through the AST evaluator. Both paths
    /// buffer the full right-hand side before touching the target map, so
    /// they interleave freely within one trigger.
    pub fn process(&mut self, event: &UpdateEvent) -> Result<(), RuntimeError> {
        let t0 = Instant::now();
        let program = self.program.clone();
        let idx = program
            .triggers
            .iter()
            .position(|t| t.relation == event.relation && t.sign == event.sign);

        if let Some(idx) = idx {
            let trigger = &program.triggers[idx];
            if trigger.trigger_vars.len() != event.tuple.len() {
                return Err(RuntimeError::EventArityMismatch {
                    relation: event.relation.clone(),
                    expected: trigger.trigger_vars.len(),
                    actual: event.tuple.len(),
                });
            }
            // Compiled kernels for this trigger, when present and aligned
            // with the statement list.
            let kernels: &[Option<CompiledStmt>] = if self.force_interpreter {
                &[]
            } else {
                program
                    .compiled
                    .get(idx)
                    .map(|c| c.stmts.as_slice())
                    .filter(|s| s.len() == trigger.statements.len())
                    .unwrap_or(&[])
            };
            // Interpreter context, built lazily: a fully compiled trigger
            // never allocates the per-event name bindings.
            let mut bindings: Option<Bindings> = None;

            // Phase 1: incremental statements read the old state.
            for (j, stmt) in trigger.statements.iter().enumerate() {
                if stmt.op == StmtOp::Increment {
                    self.exec_dispatch(stmt, flat_get(kernels, j), event, trigger, &mut bindings)?;
                }
            }
            // Phase 2: reflect the update in the stored base relation (if stored).
            self.apply_base_update(event);
            // Phase 3: re-evaluation statements read the new state.
            for (j, stmt) in trigger.statements.iter().enumerate() {
                if stmt.op == StmtOp::Replace {
                    self.exec_dispatch(stmt, flat_get(kernels, j), event, trigger, &mut bindings)?;
                }
            }
        } else {
            // No trigger (e.g. an update to a relation no query depends on): still keep
            // the stored base relation consistent.
            self.apply_base_update(event);
        }

        self.stats.events += 1;
        self.stats.busy += t0.elapsed();
        Ok(())
    }

    /// Route one statement to its compiled kernel or the interpreter.
    fn exec_dispatch(
        &mut self,
        stmt: &Statement,
        kernel: Option<&CompiledStmt>,
        event: &UpdateEvent,
        trigger: &dbtoaster_compiler::Trigger,
        bindings: &mut Option<Bindings>,
    ) -> Result<(), RuntimeError> {
        match kernel {
            Some(k) => self.exec_compiled(stmt, k, &event.tuple),
            None => {
                let ctx = bindings.get_or_insert_with(|| {
                    let mut b = Bindings::with_capacity(trigger.trigger_vars.len());
                    for (var, value) in trigger.trigger_vars.iter().zip(event.tuple.iter()) {
                        b.insert(var.clone(), value.clone());
                    }
                    b
                });
                self.exec_statement(stmt, ctx)
            }
        }
    }

    /// Execute a statement through its compiled kernel: seed the frame from
    /// the event tuple, run the plan into the reusable row buffer, then apply
    /// the buffered rows to the target map.
    fn exec_compiled(
        &mut self,
        stmt: &Statement,
        kernel: &CompiledStmt,
        tuple: &[Value],
    ) -> Result<(), RuntimeError> {
        self.stats.statements += 1;
        {
            let Engine {
                db, kernel: state, ..
            } = self;
            state.prepare(kernel);
            for (i, v) in tuple.iter().enumerate() {
                state.frame[i] = v.clone();
            }
            kernel.execute(db, state).map_err(RuntimeError::Eval)?;
        }
        let Engine {
            db,
            kernel: state,
            changes,
            ..
        } = self;
        let target = db
            .view_mut(&stmt.target)
            .ok_or_else(|| RuntimeError::UnknownView(stmt.target.clone()))?;
        if stmt.op == StmtOp::Replace {
            target.clear();
            if let Some(log) = changes.as_mut() {
                log.record_clear(&stmt.target);
            }
        }
        for (key, mult) in state.out.drain(..) {
            if mult == 0.0 {
                // A collapsed row that cancelled to zero: the interpreter's
                // result GMR drops such entries, so neither the change log
                // nor the target should see the key.
                continue;
            }
            if let Some(log) = changes.as_mut() {
                log.record_key(&stmt.target, key.clone());
            }
            target.add(key, mult);
        }
        Ok(())
    }

    /// Process a sequence of events, stopping at the first error.
    pub fn process_all<'a>(
        &mut self,
        events: impl IntoIterator<Item = &'a UpdateEvent>,
    ) -> Result<(), RuntimeError> {
        for e in events {
            self.process(e)?;
        }
        Ok(())
    }

    fn apply_base_update(&mut self, event: &UpdateEvent) {
        if let Some(view) = self.db.view_mut(&event.relation) {
            view.add(event.tuple.as_slice(), event.sign.multiplier());
            if let Some(log) = self.changes.as_mut() {
                log.record_key(&event.relation, Tuple::from(event.tuple.as_slice()));
            }
        }
    }

    fn exec_statement(
        &mut self,
        stmt: &Statement,
        bindings: &mut Bindings,
    ) -> Result<(), RuntimeError> {
        self.stats.statements += 1;
        let result = {
            let Engine { db, scratch, .. } = self;
            eval_with_scratch(&stmt.rhs, &*db, bindings, scratch)?
        };
        let target = self
            .db
            .view_mut(&stmt.target)
            .ok_or_else(|| RuntimeError::UnknownView(stmt.target.clone()))?;
        if stmt.op == StmtOp::Replace {
            target.clear();
            if let Some(log) = self.changes.as_mut() {
                log.record_clear(&stmt.target);
            }
        }
        if result.is_empty() {
            return Ok(());
        }
        let schema = result.schema().clone();
        // Resolve each key variable to its source once, outside the row loop:
        // a trigger binding (range restriction) or a result-column position.
        let key_sources: Vec<Result<Value, usize>> = stmt
            .key_vars
            .iter()
            .map(|kv| {
                if let Some(v) = bindings.get(kv) {
                    Ok(Ok(v.clone()))
                } else if let Some(i) = schema.index_of(kv) {
                    Ok(Err(i))
                } else {
                    Err(RuntimeError::MissingKeyVariable {
                        statement: stmt.to_string(),
                        variable: kv.clone(),
                    })
                }
            })
            .collect::<Result<_, _>>()?;
        for (row, mult) in result.iter() {
            let key: Tuple = key_sources
                .iter()
                .map(|s| match s {
                    Ok(v) => v.clone(),
                    Err(i) => row[*i].clone(),
                })
                .collect();
            if let Some(log) = self.changes.as_mut() {
                log.record_key(&stmt.target, key.clone());
            }
            target.add(key, mult);
        }
        Ok(())
    }

    /// Snapshot a query result as a GMR over its output columns.
    pub fn result(&self, query: &str) -> Result<Gmr, RuntimeError> {
        let qr = self
            .program
            .results
            .iter()
            .find(|r| r.name == query)
            .ok_or_else(|| RuntimeError::UnknownQuery(query.to_string()))?;
        match &qr.access {
            ResultAccess::Map(name) => self
                .db
                .view(name)
                .map(|v| v.to_gmr())
                .ok_or_else(|| RuntimeError::UnknownView(name.clone())),
            ResultAccess::Computed { expr, .. } => {
                eval_with(expr, &self.db, &mut Bindings::new()).map_err(RuntimeError::from)
            }
        }
    }

    /// Direct access to a view's contents (for tests and debugging).
    pub fn view(&self, name: &str) -> Option<Gmr> {
        self.db.view(name).map(|v| v.to_gmr())
    }

    /// Approximate memory footprint of all views and stored relations, in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.db.approx_bytes()
    }

    /// Total number of entries across all views and stored relations.
    pub fn total_entries(&self) -> usize {
        self.db
            .names()
            .filter_map(|n| self.db.view(n).map(|v| v.len()))
            .sum()
    }

    /// Runtime statistics.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Build a trace sample at the given stream fraction.
    pub fn sample(&self, fraction: f64) -> TraceSample {
        TraceSample {
            fraction,
            elapsed_secs: self.stats.busy.as_secs_f64(),
            refresh_rate: self.stats.refresh_rate(),
            memory_mb: self.memory_bytes() as f64 / (1024.0 * 1024.0),
        }
    }

    /// The sign multiplier helper re-exported for callers building events by hand.
    pub fn sign_multiplier(sign: UpdateSign) -> f64 {
        sign.multiplier()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_agca::Expr;
    use dbtoaster_compiler::{compile, CompileMode, CompileOptions, QuerySpec, RelationMeta};

    fn catalog() -> Catalog {
        [
            RelationMeta::stream("R", ["A", "B"]),
            RelationMeta::stream("S", ["B", "C"]),
        ]
        .into_iter()
        .collect()
    }

    fn example1_query() -> QuerySpec {
        // Q = Sum[]( R(a,b) * S(c,d) ): count of the cross product (Example 1).
        QuerySpec {
            name: "Q".into(),
            out_vars: vec![],
            expr: Expr::agg_sum(
                Vec::<String>::new(),
                Expr::product_of([Expr::rel("R", ["a", "b"]), Expr::rel("S", ["c", "d"])]),
            ),
        }
    }

    fn long_tuple(vals: &[i64]) -> Vec<Value> {
        vals.iter().map(|&v| Value::long(v)).collect()
    }

    fn run_example1(mode: CompileMode) -> f64 {
        let program = compile(
            &[example1_query()],
            &catalog(),
            &CompileOptions::for_mode(mode),
        )
        .unwrap();
        let mut engine = Engine::new(program, &catalog());
        engine.init_static_views().unwrap();
        // ||R|| = 2, ||S|| = 3 as in the paper's example table, then the insert sequence
        // S, R, S, S.
        let events = vec![
            UpdateEvent::insert("R", long_tuple(&[1, 1])),
            UpdateEvent::insert("R", long_tuple(&[2, 2])),
            UpdateEvent::insert("S", long_tuple(&[1, 10])),
            UpdateEvent::insert("S", long_tuple(&[2, 20])),
            UpdateEvent::insert("S", long_tuple(&[3, 30])),
            UpdateEvent::insert("S", long_tuple(&[4, 40])),
            UpdateEvent::insert("R", long_tuple(&[3, 3])),
            UpdateEvent::insert("S", long_tuple(&[5, 50])),
            UpdateEvent::insert("S", long_tuple(&[6, 60])),
        ];
        engine.process_all(&events).unwrap();
        engine.result("Q").unwrap().scalar_value()
    }

    #[test]
    fn example1_sequence_matches_paper_table() {
        // After the full sequence: ||R|| = 3, ||S|| = 6, so Q = 18 (paper, time point 4).
        for mode in [
            CompileMode::HigherOrder,
            CompileMode::FirstOrder,
            CompileMode::NaiveViewlet,
            CompileMode::Reevaluate,
        ] {
            assert_eq!(run_example1(mode), 18.0, "mode {mode}");
        }
    }

    #[test]
    fn deletions_are_handled() {
        let program = compile(
            &[example1_query()],
            &catalog(),
            &CompileOptions::for_mode(CompileMode::HigherOrder),
        )
        .unwrap();
        let mut engine = Engine::new(program, &catalog());
        engine
            .process_all(&[
                UpdateEvent::insert("R", long_tuple(&[1, 1])),
                UpdateEvent::insert("S", long_tuple(&[7, 7])),
                UpdateEvent::insert("S", long_tuple(&[8, 8])),
                UpdateEvent::delete("S", long_tuple(&[7, 7])),
            ])
            .unwrap();
        assert_eq!(engine.result("Q").unwrap().scalar_value(), 1.0);
        assert_eq!(engine.stats().events, 4);
    }

    #[test]
    fn unknown_query_errors() {
        let program = compile(
            &[example1_query()],
            &catalog(),
            &CompileOptions::for_mode(CompileMode::HigherOrder),
        )
        .unwrap();
        let engine = Engine::new(program, &catalog());
        assert!(matches!(
            engine.result("Nope"),
            Err(RuntimeError::UnknownQuery(_))
        ));
    }

    #[test]
    fn event_arity_mismatch_detected() {
        let program = compile(
            &[example1_query()],
            &catalog(),
            &CompileOptions::for_mode(CompileMode::HigherOrder),
        )
        .unwrap();
        let mut engine = Engine::new(program, &catalog());
        let err = engine
            .process(&UpdateEvent::insert("R", long_tuple(&[1])))
            .unwrap_err();
        assert!(matches!(err, RuntimeError::EventArityMismatch { .. }));
    }

    #[test]
    fn stats_and_memory_accumulate() {
        let program = compile(
            &[example1_query()],
            &catalog(),
            &CompileOptions::for_mode(CompileMode::HigherOrder),
        )
        .unwrap();
        let mut engine = Engine::new(program, &catalog());
        let before = engine.memory_bytes();
        engine
            .process(&UpdateEvent::insert("R", long_tuple(&[1, 2])))
            .unwrap();
        assert!(engine.memory_bytes() >= before);
        let sample = engine.sample(0.5);
        assert_eq!(sample.fraction, 0.5);
        assert_eq!(engine.stats().events, 1);
        assert!(engine.total_entries() >= 1);
    }
}
