//! Heap-allocation smoke test for the per-event hot path.
//!
//! The paper's headline claim is that a single-tuple update costs a handful of
//! constant-time map probes. This test pins the allocator side of that claim:
//! processing one event must (a) stay under a small constant allocation budget
//! and (b) not allocate proportionally to the size of the maintained views —
//! i.e. no key-vector clones or result materialization hiding in the trigger
//! path.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAllocator;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn alloc_count() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

use dbtoaster_agca::{Expr, UpdateEvent};
use dbtoaster_compiler::{compile, CompileMode, CompileOptions, QuerySpec, RelationMeta};
use dbtoaster_gmr::Value;
use dbtoaster_runtime::Engine;

fn build_engine() -> Engine {
    // Example 2 shape: Sum[]( O(ok, xch) * LI(ok, price) * xch * price ) — an
    // equijoin aggregate, the canonical single-tuple-update workload.
    let catalog = [
        RelationMeta::stream("O", ["OK", "XCH"]),
        RelationMeta::stream("LI", ["OK", "PRICE"]),
    ]
    .into_iter()
    .collect();
    let q = QuerySpec {
        name: "Q".into(),
        out_vars: vec![],
        expr: Expr::agg_sum(
            Vec::<String>::new(),
            Expr::product_of([
                Expr::rel("O", ["ok", "xch"]),
                Expr::rel("LI", ["ok", "price"]),
                Expr::var("xch"),
                Expr::var("price"),
            ]),
        ),
    };
    let program = compile(
        &[q],
        &catalog,
        &CompileOptions::for_mode(CompileMode::HigherOrder),
    )
    .unwrap();
    Engine::new(program, &catalog)
}

fn events(n: i64, offset: i64) -> Vec<UpdateEvent> {
    (0..n)
        .flat_map(|i| {
            let k = offset + i;
            [
                UpdateEvent::insert("O", vec![Value::long(k), Value::double(2.0)]),
                UpdateEvent::insert("LI", vec![Value::long(k), Value::double(10.0)]),
            ]
        })
        .collect()
}

/// Allocations per event after warm-up, over `measure` pre-built events.
fn allocs_per_event(engine: &mut Engine, measure: &[UpdateEvent]) -> f64 {
    let before = alloc_count();
    for e in measure {
        engine.process(e).unwrap();
    }
    (alloc_count() - before) as f64 / measure.len() as f64
}

/// A steady-state churn batch: inserts and the matching deletes over a fixed
/// key range, so the maps stop growing after the first pass and the only cost
/// left is the per-event trigger work itself.
fn churn_events(keys: i64) -> Vec<UpdateEvent> {
    (0..keys)
        .flat_map(|k| {
            [
                UpdateEvent::insert("O", vec![Value::long(k), Value::double(2.0)]),
                UpdateEvent::insert("LI", vec![Value::long(k), Value::double(10.0)]),
                UpdateEvent::delete("O", vec![Value::long(k), Value::double(2.0)]),
                UpdateEvent::delete("LI", vec![Value::long(k), Value::double(10.0)]),
            ]
        })
        .collect()
}

/// The compiled-kernel path must process events with **zero** heap
/// allocations in steady state: the frame, pattern buffers and row buffer are
/// engine-owned and recycled, keys of typical arity are inline, and a probe
/// never materializes results. (The interpreter path, by contrast, builds
/// result GMRs per statement — its budget is the constant bound below.)
#[test]
fn compiled_path_allocates_nothing_in_steady_state() {
    let mut engine = build_engine();
    assert!(
        engine.stats().compiled_triggers > 0,
        "expected compiled kernels for the equijoin workload"
    );
    // Two warm-up passes: size every buffer, touch every map entry shape.
    let batch = churn_events(64);
    engine.process_all(&batch).unwrap();
    engine.process_all(&batch).unwrap();

    let before = alloc_count();
    engine.process_all(&batch).unwrap();
    let allocs = alloc_count() - before;
    assert_eq!(
        allocs,
        0,
        "compiled path allocated {allocs} times over {} steady-state events",
        batch.len()
    );
}

/// Telemetry must not cost the hot path its zero-allocation property: with an
/// enabled handle attached, the steady-state compiled path still allocates
/// nothing. Histogram recording goes into engine-owned plain-integer buffers,
/// the periodic flush folds them with atomic adds, and the slow-batch tracer
/// only allocates when it assembles a trace (parked here via an unreachable
/// threshold, as a latency-sensitive deployment would configure it).
#[test]
fn compiled_path_with_telemetry_allocates_nothing_in_steady_state() {
    use dbtoaster_runtime::{Telemetry, TelemetryConfig};
    let mut engine = build_engine();
    let tel = Telemetry::with_config(TelemetryConfig {
        slow_batch_threshold: std::time::Duration::from_secs(3600),
        ..TelemetryConfig::default()
    });
    engine.set_telemetry(tel.clone());
    let batch = churn_events(64);
    engine.process_all(&batch).unwrap();
    engine.process_all(&batch).unwrap();

    let before = alloc_count();
    engine.process_all(&batch).unwrap();
    let allocs = alloc_count() - before;
    assert_eq!(
        allocs,
        0,
        "telemetry-enabled compiled path allocated {allocs} times over {} steady-state events",
        batch.len()
    );
    // And the samples actually landed: one per event (each process() call is
    // a batch of one), visible after an explicit flush.
    engine.flush_telemetry();
    let snap = tel.snapshot();
    assert_eq!(snap.batch_latency.count, 3 * batch.len() as u64);
    assert_eq!(snap.events, 3 * batch.len() as u64);
}

#[test]
fn per_event_allocations_are_small_and_constant() {
    let mut engine = build_engine();
    // This test pins the *interpreter* budget; kernels would trivially pass it.
    engine.set_force_interpreter(true);

    // Warm-up at a small working set, then measure.
    engine.process_all(&events(64, 0)).unwrap();
    let small_batch = events(256, 1_000);
    let small = allocs_per_event(&mut engine, &small_batch);

    // Grow the views 20x, then measure again.
    engine.process_all(&events(20_000, 10_000)).unwrap();
    let large_batch = events(256, 50_000);
    let large = allocs_per_event(&mut engine, &large_batch);

    // (a) Constant budget: a trigger firing is a few statements, each of which
    // may build a handful of small scratch vectors and result maps — but it
    // must never materialize lookup results or clone per-entry keys.
    assert!(
        small < 120.0,
        "per-event allocations too high at small views: {small:.1}"
    );
    assert!(
        large < 120.0,
        "per-event allocations too high at large views: {large:.1}"
    );

    // (b) Size independence: growing the views 20x must not grow the per-event
    // allocation count materially (hash-map growth amortizes to ~0).
    assert!(
        large <= small * 1.5 + 8.0,
        "per-event allocations scale with view size: {small:.1} -> {large:.1}"
    );
}
