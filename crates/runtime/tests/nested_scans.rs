//! Regression test: compiled kernels may nest a partial scan of a view
//! *inside* the visit callback of another partial scan of the **same** view
//! (a non-hoistable inline sub-aggregate, e.g. `M(b,x) * (z := Sum[](M(d,x)*d))`
//! where the inner scan depends on the outer scan's binding `x`). The store
//! must not hold its index-registry lock across the visit, or the nested
//! scan's lazy index build self-deadlocks on the first event.

use dbtoaster_agca::eval::{eval, Bindings};
use dbtoaster_agca::{lower_statement, Expr, KernelState};
use dbtoaster_gmr::Value;
use dbtoaster_runtime::Database;

#[test]
fn nested_partial_scan_of_same_view_does_not_deadlock() {
    let mut db = Database::new();
    db.declare("M", vec!["A".to_string(), "B".to_string()]);
    let m = db.view_mut("M").unwrap();
    for (a, b, mult) in [(1, 10, 2.0), (1, 20, 1.0), (2, 10, 3.0), (2, 30, 1.0)] {
        m.add(vec![Value::long(a), Value::long(b)], mult);
    }

    // M(b, x) * (z := Sum[]( M(d, x) * d )) * z — the inner scan constrains
    // its second column to the outer scan's `x` binding, so it cannot be
    // hoisted and runs inline, inside the outer scan's visit callback, over a
    // different binding mask of the same map.
    let inner = Expr::agg_sum(
        Vec::<String>::new(),
        Expr::product_of([Expr::view("M", ["d", "x"]), Expr::var("d")]),
    );
    let rhs = Expr::product_of([
        Expr::view("M", ["b", "x"]),
        Expr::lift("z", inner),
        Expr::var("z"),
    ]);
    let trigger_vars = vec!["b".to_string()];
    let stmt = lower_statement(&trigger_vars, &["x".to_string()], &rhs)
        .expect("statement should lower to a compiled kernel");

    let mut state = KernelState::new();
    state.prepare(&stmt);
    state.frame[0] = Value::long(1);
    // Pre-fix this call never returned (read-lock held across the visit,
    // nested ensure_index blocked on the write lock).
    stmt.execute(&db, &mut state).expect("kernel executes");

    // Same statement through the AST interpreter as the oracle.
    let mut ctx = Bindings::new();
    ctx.insert("b".to_string(), Value::long(1));
    let expected = eval(&rhs, &db, &ctx).unwrap();
    let mut got: Vec<(Vec<Value>, f64)> =
        state.out.drain(..).map(|(k, m)| (k.to_vec(), m)).collect();
    got.sort_by(|a, b| a.0[0].total_cmp(&b.0[0]));
    let xi = expected.schema().index_of("x").unwrap();
    let mut want: Vec<(Vec<Value>, f64)> = expected
        .iter()
        .map(|(t, m)| (vec![t[xi].clone()], m))
        .collect();
    want.sort_by(|a, b| a.0[0].total_cmp(&b.0[0]));
    assert_eq!(got, want, "compiled nested scan diverges from interpreter");
}
