//! A small SQL lexer for the fragment used by the DBToaster workload queries.

use std::fmt;

/// Lexical tokens.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Identifier or keyword (keywords are matched case-insensitively by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `;`
    Semicolon,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `=`
    Eq,
    /// `<>` or `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Semicolon => write!(f, ";"),
            Token::Star => write!(f, "*"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Slash => write!(f, "/"),
            Token::Eq => write!(f, "="),
            Token::Ne => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::Le => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::Ge => write!(f, ">="),
        }
    }
}

/// Lexer errors.
#[derive(Clone, Debug, PartialEq)]
pub struct LexError {
    /// Human-readable message.
    pub message: String,
    /// Byte offset of the error.
    pub position: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.position)
    }
}

impl std::error::Error for LexError {}

/// Tokenize a SQL string. Line comments (`-- ...`) are skipped.
pub fn tokenize(input: &str) -> Result<Vec<Token>, LexError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if i + 1 < bytes.len() && bytes[i + 1] == b'-' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' if i + 1 < bytes.len() && bytes[i + 1] == b'=' => {
                tokens.push(Token::Ne);
                i += 2;
            }
            '<' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Le);
                    i += 2;
                } else if i + 1 < bytes.len() && bytes[i + 1] == b'>' {
                    tokens.push(Token::Ne);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if i + 1 < bytes.len() && bytes[i + 1] == b'=' {
                    tokens.push(Token::Ge);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'\'' {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(LexError {
                        message: "unterminated string literal".into(),
                        position: i,
                    });
                }
                tokens.push(Token::Str(input[start..j].to_string()));
                i = j + 1;
            }
            c if c.is_ascii_digit() => {
                let start = i;
                let mut is_float = false;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_digit()
                        || (bytes[i] == b'.'
                            && i + 1 < bytes.len()
                            && (bytes[i + 1] as char).is_ascii_digit()))
                {
                    if bytes[i] == b'.' {
                        is_float = true;
                    }
                    i += 1;
                }
                let text = &input[start..i];
                if is_float {
                    tokens.push(Token::Float(text.parse().map_err(|_| LexError {
                        message: format!("invalid float literal {text}"),
                        position: start,
                    })?));
                } else {
                    tokens.push(Token::Int(text.parse().map_err(|_| LexError {
                        message: format!("invalid integer literal {text}"),
                        position: start,
                    })?));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(input[start..i].to_string()));
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character '{other}'"),
                    position: i,
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_simple_query() {
        let toks = tokenize("SELECT SUM(a.x) FROM T a WHERE a.y >= 10.5;").unwrap();
        assert!(toks.contains(&Token::Ident("SELECT".into())));
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::Float(10.5)));
        assert!(toks.contains(&Token::Semicolon));
    }

    #[test]
    fn tokenizes_strings_and_comments() {
        let toks = tokenize("-- comment\nWHERE name = 'BUILDING' AND x <> 3").unwrap();
        assert!(toks.contains(&Token::Str("BUILDING".into())));
        assert!(toks.contains(&Token::Ne));
        assert!(!toks
            .iter()
            .any(|t| matches!(t, Token::Ident(s) if s == "comment")));
    }

    #[test]
    fn distinguishes_operators() {
        let toks = tokenize("< <= > >= = <> !=").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::Eq,
                Token::Ne,
                Token::Ne
            ]
        );
    }

    #[test]
    fn numbers_and_dots() {
        let toks = tokenize("a.b 0.25 100").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Ident("a".into()),
                Token::Dot,
                Token::Ident("b".into()),
                Token::Float(0.25),
                Token::Int(100)
            ]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(tokenize("'abc").is_err());
        assert!(tokenize("SELECT @").is_err());
    }
}
