//! SQL → AGCA translation.
//!
//! The translation follows the standard conjunctive-query reading that the paper uses
//! throughout its examples (e.g. Example 6 translating Example 2's SQL):
//!
//! * every FROM table becomes a relation atom whose arguments are per-alias column
//!   variables;
//! * top-level equality predicates between columns are *unified* — both columns map to
//!   the same variable, turning equijoins (and equality correlations of nested
//!   subqueries) into shared variables, which is what the compiler's decomposition and
//!   index selection rely on;
//! * remaining predicates become comparison factors; disjunctions, `NOT`, `IN` lists and
//!   `CASE` are translated through 0/1 indicator expressions (`a OR b = a + b − a·b`);
//! * scalar subqueries are lifted (`z := Sum[](...)`) and compared through `z`;
//!   `EXISTS` becomes a lifted count compared against 0;
//! * each aggregate of the select list becomes one maintained view
//!   `Sum_{group-by}(atoms * predicates * value)`; `AVG` is maintained as a SUM and a
//!   COUNT view combined at result-access time (generalized Higher-Order IVM).

use crate::ast::{
    AggFunc, ArithOp, ColumnRef, Condition, SelectQuery, SqlCmpOp, SqlExpr, TableRef,
};
use crate::catalog::SqlCatalog;
use dbtoaster_agca::{CmpOp, Expr, ScalarFn};
use dbtoaster_gmr::Value;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A view that must be maintained for the query.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ViewSpec {
    /// View (map) name.
    pub name: String,
    /// Key columns (the query's group-by variables).
    pub out_vars: Vec<String>,
    /// Defining AGCA expression over the base relations.
    pub expr: Expr,
}

/// How one output column of the query is obtained.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum OutputColumn {
    /// A group-by column, exposed as a key column of every maintained view.
    GroupBy {
        /// SQL-visible column name.
        column: String,
        /// The AGCA variable carrying it.
        var: String,
    },
    /// An aggregate read directly from a maintained view.
    Aggregate {
        /// SQL-visible column name.
        column: String,
        /// The maintained view holding it.
        view: String,
    },
    /// An `AVG` aggregate computed as SUM / COUNT at access time.
    Average {
        /// SQL-visible column name.
        column: String,
        /// View holding the sum.
        sum_view: String,
        /// View holding the count.
        count_view: String,
    },
}

/// The result of translating one SQL query.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TranslatedQuery {
    /// Query name.
    pub name: String,
    /// Group-by variables (key columns of every maintained view).
    pub group_by: Vec<String>,
    /// Views to compile and maintain.
    pub views: Vec<ViewSpec>,
    /// Output columns in select-list order.
    pub outputs: Vec<OutputColumn>,
}

/// Translation errors.
#[derive(Clone, Debug, PartialEq)]
pub enum TranslateError {
    /// A FROM table is not in the catalog.
    UnknownTable(String),
    /// A column could not be resolved in any visible scope.
    UnknownColumn(String),
    /// A column resolves to more than one table in the same scope.
    AmbiguousColumn(String),
    /// The query uses a feature outside the supported fragment.
    Unsupported(String),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::UnknownTable(t) => write!(f, "unknown table {t}"),
            TranslateError::UnknownColumn(c) => write!(f, "unknown column {c}"),
            TranslateError::AmbiguousColumn(c) => write!(f, "ambiguous column {c}"),
            TranslateError::Unsupported(m) => write!(f, "unsupported SQL feature: {m}"),
        }
    }
}

impl std::error::Error for TranslateError {}

/// Translate a parsed SQL query into maintained views and output columns.
pub fn translate(
    name: &str,
    query: &SelectQuery,
    catalog: &SqlCatalog,
) -> Result<TranslatedQuery, TranslateError> {
    let mut tr = Translator {
        catalog,
        uf: UnionFind::default(),
        fresh: 0,
    };
    // Phase A: collect variable unifications (equijoins, equality correlations).
    let scopes = vec![tr.scope_of(query)?];
    tr.collect_unifications(query, &scopes)?;

    // Phase B: build the maintained views.
    let scope = tr.scope_of(query)?;
    let factors = tr.body_factors(query, std::slice::from_ref(&scope))?;

    // Group-by variables and output columns.
    let mut group_by = Vec::new();
    let mut group_columns: HashMap<String, String> = HashMap::new();
    for g in &query.group_by {
        let var = tr.resolve_column(g, std::slice::from_ref(&scope))?;
        if !group_by.contains(&var) {
            group_by.push(var.clone());
        }
        group_columns.insert(g.column.to_lowercase(), var);
    }

    let mut views = Vec::new();
    let mut outputs = Vec::new();
    let mut agg_index = 0usize;
    for item in &query.select {
        match &item.expr {
            SqlExpr::Column(c) => {
                let var = tr.resolve_column(c, std::slice::from_ref(&scope))?;
                if !group_by.contains(&var) {
                    return Err(TranslateError::Unsupported(format!(
                        "non-aggregate column {} not in GROUP BY",
                        c.column
                    )));
                }
                outputs.push(OutputColumn::GroupBy {
                    column: item
                        .alias
                        .clone()
                        .unwrap_or_else(|| c.column.to_lowercase()),
                    var,
                });
            }
            SqlExpr::Aggregate(func, arg) => {
                agg_index += 1;
                let col_name = item
                    .alias
                    .clone()
                    .unwrap_or_else(|| format!("{}_{}", name, agg_index));
                let base = format!("{}_{}", name, agg_index);
                match func {
                    AggFunc::Sum | AggFunc::Count => {
                        let view_name = if query
                            .select
                            .iter()
                            .filter(|s| !matches!(s.expr, SqlExpr::Column(_)))
                            .count()
                            == 1
                        {
                            name.to_string()
                        } else {
                            base
                        };
                        let expr = tr.aggregate_expr(
                            &factors,
                            &group_by,
                            arg.as_deref(),
                            *func,
                            std::slice::from_ref(&scope),
                        )?;
                        views.push(ViewSpec {
                            name: view_name.clone(),
                            out_vars: group_by.clone(),
                            expr,
                        });
                        outputs.push(OutputColumn::Aggregate {
                            column: col_name,
                            view: view_name,
                        });
                    }
                    AggFunc::Avg => {
                        let sum_name = format!("{base}_sum");
                        let cnt_name = format!("{base}_cnt");
                        let sum_expr = tr.aggregate_expr(
                            &factors,
                            &group_by,
                            arg.as_deref(),
                            AggFunc::Sum,
                            std::slice::from_ref(&scope),
                        )?;
                        let cnt_expr = tr.aggregate_expr(
                            &factors,
                            &group_by,
                            None,
                            AggFunc::Count,
                            std::slice::from_ref(&scope),
                        )?;
                        views.push(ViewSpec {
                            name: sum_name.clone(),
                            out_vars: group_by.clone(),
                            expr: sum_expr,
                        });
                        views.push(ViewSpec {
                            name: cnt_name.clone(),
                            out_vars: group_by.clone(),
                            expr: cnt_expr,
                        });
                        outputs.push(OutputColumn::Average {
                            column: col_name,
                            sum_view: sum_name,
                            count_view: cnt_name,
                        });
                    }
                }
            }
            other => {
                return Err(TranslateError::Unsupported(format!(
                    "select item must be a group-by column or a single aggregate, got {other:?}"
                )));
            }
        }
    }
    if views.is_empty() {
        return Err(TranslateError::Unsupported(
            "query has no aggregate in its select list".into(),
        ));
    }
    let _ = group_columns;
    Ok(TranslatedQuery {
        name: name.to_string(),
        group_by,
        views,
        outputs,
    })
}

// ---------------------------------------------------------------------------
// Internals
// ---------------------------------------------------------------------------

/// One scope: alias → (table name, columns).
type Scope = Vec<(String, String, Vec<String>)>;

#[derive(Default)]
struct UnionFind {
    parent: HashMap<String, String>,
}

impl UnionFind {
    fn find(&self, v: &str) -> String {
        let mut cur = v.to_string();
        while let Some(p) = self.parent.get(&cur) {
            if *p == cur {
                break;
            }
            cur = p.clone();
        }
        cur
    }

    fn union(&mut self, a: &str, b: &str) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        // Deterministic representative: lexicographically smaller root.
        if ra <= rb {
            self.parent.insert(rb, ra);
        } else {
            self.parent.insert(ra, rb);
        }
    }
}

struct Translator<'a> {
    catalog: &'a SqlCatalog,
    uf: UnionFind,
    fresh: usize,
}

impl<'a> Translator<'a> {
    fn scope_of(&self, q: &SelectQuery) -> Result<Scope, TranslateError> {
        q.from
            .iter()
            .map(|t: &TableRef| {
                let def = self
                    .catalog
                    .get(&t.table)
                    .ok_or_else(|| TranslateError::UnknownTable(t.table.clone()))?;
                Ok((
                    t.alias.to_lowercase(),
                    def.name.clone(),
                    def.columns.clone(),
                ))
            })
            .collect()
    }

    fn raw_var(alias: &str, column: &str) -> String {
        format!("{}_{}", alias.to_lowercase(), column.to_lowercase())
    }

    /// Resolve a column reference to its (pre-unification) variable name.
    fn resolve_raw(&self, c: &ColumnRef, scopes: &[Scope]) -> Result<String, TranslateError> {
        let col = c.column.to_lowercase();
        match &c.qualifier {
            Some(q) => {
                let q = q.to_lowercase();
                for scope in scopes.iter().rev() {
                    if let Some((alias, _, columns)) = scope.iter().find(|(a, _, _)| *a == q) {
                        if columns.contains(&col) {
                            return Ok(Self::raw_var(alias, &col));
                        }
                        return Err(TranslateError::UnknownColumn(format!("{q}.{col}")));
                    }
                }
                Err(TranslateError::UnknownColumn(format!("{q}.{col}")))
            }
            None => {
                for scope in scopes.iter().rev() {
                    let matches: Vec<&(String, String, Vec<String>)> = scope
                        .iter()
                        .filter(|(_, _, columns)| columns.contains(&col))
                        .collect();
                    if matches.len() == 1 {
                        return Ok(Self::raw_var(&matches[0].0, &col));
                    }
                    if matches.len() > 1 {
                        return Err(TranslateError::AmbiguousColumn(col));
                    }
                }
                Err(TranslateError::UnknownColumn(col))
            }
        }
    }

    fn resolve_column(&self, c: &ColumnRef, scopes: &[Scope]) -> Result<String, TranslateError> {
        Ok(self.uf.find(&self.resolve_raw(c, scopes)?))
    }

    // ------------------------------------------------ phase A: unification

    fn collect_unifications(
        &mut self,
        q: &SelectQuery,
        scopes: &[Scope],
    ) -> Result<(), TranslateError> {
        if let Some(w) = &q.where_clause {
            self.collect_cond(w, q, scopes, true)?;
        }
        Ok(())
    }

    #[allow(clippy::only_used_in_recursion)]
    fn collect_cond(
        &mut self,
        c: &Condition,
        q: &SelectQuery,
        scopes: &[Scope],
        conjunctive: bool,
    ) -> Result<(), TranslateError> {
        match c {
            Condition::And(a, b) => {
                self.collect_cond(a, q, scopes, conjunctive)?;
                self.collect_cond(b, q, scopes, conjunctive)?;
            }
            Condition::Or(a, b) => {
                self.collect_cond(a, q, scopes, false)?;
                self.collect_cond(b, q, scopes, false)?;
            }
            Condition::Not(a) => self.collect_cond(a, q, scopes, false)?,
            Condition::Cmp(op, l, r) => {
                if conjunctive && *op == SqlCmpOp::Eq {
                    if let (SqlExpr::Column(a), SqlExpr::Column(b)) = (l, r) {
                        let va = self.resolve_raw(a, scopes)?;
                        let vb = self.resolve_raw(b, scopes)?;
                        self.uf.union(&va, &vb);
                    }
                }
                self.collect_expr(l, scopes)?;
                self.collect_expr(r, scopes)?;
            }
            Condition::Between(a, b, c2) => {
                self.collect_expr(a, scopes)?;
                self.collect_expr(b, scopes)?;
                self.collect_expr(c2, scopes)?;
            }
            Condition::InList(e, vs) => {
                self.collect_expr(e, scopes)?;
                for v in vs {
                    self.collect_expr(v, scopes)?;
                }
            }
            Condition::Like(e, _) => self.collect_expr(e, scopes)?,
            Condition::Exists(sub) => self.collect_subquery(sub, scopes)?,
        }
        Ok(())
    }

    fn collect_expr(&mut self, e: &SqlExpr, scopes: &[Scope]) -> Result<(), TranslateError> {
        match e {
            SqlExpr::Arith(_, a, b) => {
                self.collect_expr(a, scopes)?;
                self.collect_expr(b, scopes)?;
            }
            SqlExpr::Neg(a) | SqlExpr::Aggregate(_, Some(a)) => self.collect_expr(a, scopes)?,
            SqlExpr::Subquery(sub) => self.collect_subquery(sub, scopes)?,
            SqlExpr::Case {
                when,
                then,
                otherwise,
            } => {
                // CASE conditions are not conjunctive contexts.
                self.collect_cond(when, &dummy_query(), scopes, false)?;
                self.collect_expr(then, scopes)?;
                self.collect_expr(otherwise, scopes)?;
            }
            SqlExpr::ListMax(args) => {
                for a in args {
                    self.collect_expr(a, scopes)?;
                }
            }
            _ => {}
        }
        Ok(())
    }

    fn collect_subquery(
        &mut self,
        sub: &SelectQuery,
        scopes: &[Scope],
    ) -> Result<(), TranslateError> {
        let mut child_scopes = scopes.to_vec();
        child_scopes.push(self.scope_of(sub)?);
        self.collect_unifications(sub, &child_scopes)
    }

    // ------------------------------------------------ phase B: expression building

    /// The relation atoms and predicate factors of a (sub)query body.
    fn body_factors(
        &mut self,
        q: &SelectQuery,
        scopes: &[Scope],
    ) -> Result<Vec<Expr>, TranslateError> {
        let scope = scopes.last().cloned().unwrap_or_default();
        let mut factors = Vec::new();
        for (alias, table, columns) in &scope {
            let args: Vec<String> = columns
                .iter()
                .map(|c| self.uf.find(&Self::raw_var(alias, c)))
                .collect();
            factors.push(Expr::rel(table.clone(), args));
        }
        if let Some(w) = &q.where_clause {
            factors.extend(self.condition_factors(w, scopes)?);
        }
        Ok(factors)
    }

    /// Translate a condition appearing as a top-level conjunct into factors.
    fn condition_factors(
        &mut self,
        c: &Condition,
        scopes: &[Scope],
    ) -> Result<Vec<Expr>, TranslateError> {
        match c {
            Condition::And(a, b) => {
                let mut out = self.condition_factors(a, scopes)?;
                out.extend(self.condition_factors(b, scopes)?);
                Ok(out)
            }
            Condition::Cmp(SqlCmpOp::Eq, SqlExpr::Column(_), SqlExpr::Column(_)) => {
                // Already handled by variable unification.
                Ok(vec![])
            }
            other => Ok(vec![self.indicator(other, scopes)?]),
        }
    }

    /// Translate a condition into a 0/1 AGCA expression.
    fn indicator(&mut self, c: &Condition, scopes: &[Scope]) -> Result<Expr, TranslateError> {
        match c {
            Condition::And(a, b) => Ok(Expr::product_of([
                self.indicator(a, scopes)?,
                self.indicator(b, scopes)?,
            ])),
            Condition::Or(a, b) => {
                let ia = self.indicator(a, scopes)?;
                let ib = self.indicator(b, scopes)?;
                Ok(Expr::sum_of([
                    ia.clone(),
                    ib.clone(),
                    Expr::neg(Expr::product_of([ia, ib])),
                ]))
            }
            Condition::Not(a) => {
                let ia = self.indicator(a, scopes)?;
                Ok(Expr::sum_of([Expr::one(), Expr::neg(ia)]))
            }
            Condition::Cmp(op, l, r) => {
                let mut prefix = Vec::new();
                let le = self.scalar(l, scopes, &mut prefix)?;
                let re = self.scalar(r, scopes, &mut prefix)?;
                prefix.push(Expr::cmp(cmp_op(*op), le, re));
                Ok(Expr::product_of(prefix))
            }
            Condition::Between(e, lo, hi) => {
                let mut prefix = Vec::new();
                let ee = self.scalar(e, scopes, &mut prefix)?;
                let loe = self.scalar(lo, scopes, &mut prefix)?;
                let hie = self.scalar(hi, scopes, &mut prefix)?;
                prefix.push(Expr::cmp(CmpOp::Ge, ee.clone(), loe));
                prefix.push(Expr::cmp(CmpOp::Le, ee, hie));
                Ok(Expr::product_of(prefix))
            }
            Condition::InList(e, values) => {
                // Membership in a list of constants: a sum of equality indicators (the
                // constants are distinct, so no overlap correction is needed).
                let mut prefix = Vec::new();
                let ee = self.scalar(e, scopes, &mut prefix)?;
                let alternatives: Vec<Expr> = values
                    .iter()
                    .map(|v| {
                        let ve = self.scalar(v, scopes, &mut prefix)?;
                        Ok(Expr::cmp(CmpOp::Eq, ee.clone(), ve))
                    })
                    .collect::<Result<_, TranslateError>>()?;
                prefix.push(Expr::sum_of(alternatives));
                Ok(Expr::product_of(prefix))
            }
            Condition::Like(e, pattern) => {
                let mut prefix = Vec::new();
                let ee = self.scalar(e, scopes, &mut prefix)?;
                prefix.push(Expr::apply(ScalarFn::Like(pattern.clone()), vec![ee]));
                Ok(Expr::product_of(prefix))
            }
            Condition::Exists(sub) => {
                let count = self.subquery_count(sub, scopes)?;
                let z = self.fresh_var("ex");
                Ok(Expr::product_of([
                    Expr::lift(z.clone(), count),
                    Expr::cmp(CmpOp::Gt, Expr::var(z), Expr::val(0)),
                ]))
            }
        }
    }

    /// Translate a scalar SQL expression. Scalar subqueries are lifted into fresh
    /// variables appended to `prefix`.
    fn scalar(
        &mut self,
        e: &SqlExpr,
        scopes: &[Scope],
        prefix: &mut Vec<Expr>,
    ) -> Result<Expr, TranslateError> {
        match e {
            SqlExpr::Column(c) => Ok(Expr::var(self.resolve_column(c, scopes)?)),
            SqlExpr::Int(v) => Ok(Expr::val(*v)),
            SqlExpr::Float(v) => Ok(Expr::val(*v)),
            SqlExpr::Date(v) => Ok(Expr::val(*v)),
            SqlExpr::Str(s) => Ok(Expr::Const(Value::str(s))),
            SqlExpr::Neg(a) => Ok(Expr::neg(self.scalar(a, scopes, prefix)?)),
            SqlExpr::Arith(op, a, b) => {
                let ae = self.scalar(a, scopes, prefix)?;
                let be = self.scalar(b, scopes, prefix)?;
                Ok(match op {
                    ArithOp::Add => Expr::sum_of([ae, be]),
                    ArithOp::Sub => Expr::sum_of([ae, Expr::neg(be)]),
                    ArithOp::Mul => Expr::product_of([ae, be]),
                    ArithOp::Div => Expr::apply(ScalarFn::Div, vec![ae, be]),
                })
            }
            SqlExpr::ListMax(args) => {
                let translated: Vec<Expr> = args
                    .iter()
                    .map(|a| self.scalar(a, scopes, prefix))
                    .collect::<Result<_, _>>()?;
                Ok(Expr::apply(ScalarFn::ListMax, translated))
            }
            SqlExpr::Case {
                when,
                then,
                otherwise,
            } => {
                let iw = self.indicator(when, scopes)?;
                let te = self.scalar(then, scopes, prefix)?;
                let oe = self.scalar(otherwise, scopes, prefix)?;
                // CASE WHEN c THEN a ELSE b = c*a + (1-c)*b.
                Ok(Expr::sum_of([
                    Expr::product_of([iw.clone(), te]),
                    Expr::product_of([Expr::sum_of([Expr::one(), Expr::neg(iw)]), oe]),
                ]))
            }
            SqlExpr::Subquery(sub) => {
                let sub_expr = self.scalar_subquery(sub, scopes)?;
                let z = self.fresh_var("sub");
                prefix.push(Expr::lift(z.clone(), sub_expr));
                Ok(Expr::var(z))
            }
            SqlExpr::Aggregate(..) => Err(TranslateError::Unsupported(
                "aggregate in a scalar context outside a subquery select list".into(),
            )),
        }
    }

    /// Translate a scalar subquery (single select item containing aggregates).
    fn scalar_subquery(
        &mut self,
        sub: &SelectQuery,
        scopes: &[Scope],
    ) -> Result<Expr, TranslateError> {
        if !sub.group_by.is_empty() {
            return Err(TranslateError::Unsupported(
                "GROUP BY in a scalar subquery".into(),
            ));
        }
        if sub.select.len() != 1 {
            return Err(TranslateError::Unsupported(
                "scalar subquery must select exactly one expression".into(),
            ));
        }
        let mut child_scopes = scopes.to_vec();
        child_scopes.push(self.scope_of(sub)?);
        let body = self.body_factors(sub, &child_scopes)?;
        let item = sub.select[0].expr.clone();
        self.subquery_select_expr(&item, &body, &child_scopes)
    }

    /// Translate the select expression of a scalar subquery: aggregate nodes become
    /// `Sum[]` over the subquery body, everything else is scalar arithmetic around them.
    fn subquery_select_expr(
        &mut self,
        e: &SqlExpr,
        body: &[Expr],
        scopes: &[Scope],
    ) -> Result<Expr, TranslateError> {
        match e {
            SqlExpr::Aggregate(AggFunc::Sum, Some(arg)) => {
                let mut prefix = Vec::new();
                let value = self.scalar(arg, scopes, &mut prefix)?;
                let mut factors = body.to_vec();
                factors.extend(prefix);
                factors.push(value);
                Ok(Expr::agg_sum(
                    Vec::<String>::new(),
                    Expr::product_of(factors),
                ))
            }
            SqlExpr::Aggregate(AggFunc::Count, _) | SqlExpr::Aggregate(AggFunc::Sum, None) => Ok(
                Expr::agg_sum(Vec::<String>::new(), Expr::product_of(body.to_vec())),
            ),
            SqlExpr::Aggregate(AggFunc::Avg, Some(arg)) => {
                let sum = self.subquery_select_expr(
                    &SqlExpr::Aggregate(AggFunc::Sum, Some(arg.clone())),
                    body,
                    scopes,
                )?;
                let count = self.subquery_select_expr(
                    &SqlExpr::Aggregate(AggFunc::Count, None),
                    body,
                    scopes,
                )?;
                Ok(Expr::apply(ScalarFn::Div, vec![sum, count]))
            }
            SqlExpr::Arith(op, a, b) => {
                let ae = self.subquery_select_expr(a, body, scopes)?;
                let be = self.subquery_select_expr(b, body, scopes)?;
                Ok(match op {
                    ArithOp::Add => Expr::sum_of([ae, be]),
                    ArithOp::Sub => Expr::sum_of([ae, Expr::neg(be)]),
                    ArithOp::Mul => Expr::product_of([ae, be]),
                    ArithOp::Div => Expr::apply(ScalarFn::Div, vec![ae, be]),
                })
            }
            SqlExpr::Neg(a) => Ok(Expr::neg(self.subquery_select_expr(a, body, scopes)?)),
            SqlExpr::Int(_)
            | SqlExpr::Float(_)
            | SqlExpr::Date(_)
            | SqlExpr::Str(_)
            | SqlExpr::Column(_) => {
                let mut prefix = Vec::new();
                let v = self.scalar(e, scopes, &mut prefix)?;
                if prefix.is_empty() {
                    Ok(v)
                } else {
                    Err(TranslateError::Unsupported(
                        "nested subquery inside a subquery select constant".into(),
                    ))
                }
            }
            other => Err(TranslateError::Unsupported(format!(
                "unsupported scalar-subquery select expression {other:?}"
            ))),
        }
    }

    /// Translate an EXISTS subquery into its tuple count.
    fn subquery_count(
        &mut self,
        sub: &SelectQuery,
        scopes: &[Scope],
    ) -> Result<Expr, TranslateError> {
        let mut child_scopes = scopes.to_vec();
        child_scopes.push(self.scope_of(sub)?);
        let body = self.body_factors(sub, &child_scopes)?;
        Ok(Expr::agg_sum(Vec::<String>::new(), Expr::product_of(body)))
    }

    /// Build the maintained-view expression for one top-level aggregate.
    fn aggregate_expr(
        &mut self,
        body: &[Expr],
        group_by: &[String],
        arg: Option<&SqlExpr>,
        func: AggFunc,
        scopes: &[Scope],
    ) -> Result<Expr, TranslateError> {
        let mut factors = body.to_vec();
        if func == AggFunc::Sum {
            if let Some(arg) = arg {
                let mut prefix = Vec::new();
                let value = self.scalar(arg, scopes, &mut prefix)?;
                factors.extend(prefix);
                factors.push(value);
            }
        }
        Ok(Expr::agg_sum(
            group_by.iter().cloned(),
            Expr::product_of(factors),
        ))
    }

    fn fresh_var(&mut self, hint: &str) -> String {
        self.fresh += 1;
        format!("__{hint}{}", self.fresh)
    }
}

fn dummy_query() -> SelectQuery {
    SelectQuery {
        select: vec![],
        from: vec![],
        where_clause: None,
        group_by: vec![],
    }
}

fn cmp_op(op: SqlCmpOp) -> CmpOp {
    match op {
        SqlCmpOp::Eq => CmpOp::Eq,
        SqlCmpOp::Ne => CmpOp::Ne,
        SqlCmpOp::Lt => CmpOp::Lt,
        SqlCmpOp::Le => CmpOp::Le,
        SqlCmpOp::Gt => CmpOp::Gt,
        SqlCmpOp::Ge => CmpOp::Ge,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::TableDef;
    use crate::parser::parse_query;

    fn catalog() -> SqlCatalog {
        [
            TableDef::stream("Orders", ["ordk", "ck", "xch"]),
            TableDef::stream("Lineitem", ["ordk", "pk", "price", "qty"]),
            TableDef::stream("Customer", ["ck", "nk", "acctbal"]),
            TableDef::stream("Bids", ["t", "id", "broker_id", "price", "volume"]),
            TableDef::stream("Asks", ["t", "id", "broker_id", "price", "volume"]),
        ]
        .into_iter()
        .collect()
    }

    fn translate_sql(name: &str, sql: &str) -> TranslatedQuery {
        let q = parse_query(sql).unwrap();
        translate(name, &q, &catalog()).unwrap()
    }

    #[test]
    fn example2_translation_shares_join_variable() {
        let t = translate_sql(
            "q",
            "SELECT SUM(li.price * o.xch) FROM Orders o, Lineitem li WHERE o.ordk = li.ordk",
        );
        assert_eq!(t.views.len(), 1);
        let expr = &t.views[0].expr;
        // Both atoms use the same unified variable for the join column and there is no
        // explicit equality comparison left.
        let s = expr.to_string();
        assert!(s.contains("Orders("));
        assert!(s.contains("Lineitem("));
        assert!(
            !s.contains("="),
            "equijoin should be variable unification: {s}"
        );
        assert_eq!(expr.degree(), 2);
        assert_eq!(t.group_by.len(), 0);
    }

    #[test]
    fn group_by_columns_become_out_vars() {
        let t = translate_sql(
            "q3",
            "SELECT o.ck, SUM(li.price) FROM Orders o, Lineitem li \
             WHERE o.ordk = li.ordk GROUP BY o.ck",
        );
        assert_eq!(t.group_by, vec!["o_ck".to_string()]);
        assert_eq!(t.views[0].out_vars, vec!["o_ck".to_string()]);
        assert_eq!(t.outputs.len(), 2);
        assert!(matches!(t.outputs[0], OutputColumn::GroupBy { .. }));
    }

    #[test]
    fn avg_views() {
        let t = translate_sql("qa", "SELECT AVG(li.qty) FROM Lineitem li");
        assert_eq!(t.views.len(), 2);
        assert!(matches!(&t.outputs[0], OutputColumn::Average { .. }));
    }

    #[test]
    fn correlated_scalar_subquery_is_lifted_with_shared_variable() {
        // Q17a-style.
        let t = translate_sql(
            "q17a",
            "SELECT SUM(li.price) FROM Lineitem li, Orders o \
             WHERE o.ordk = li.ordk AND li.qty < 0.5 * \
             (SELECT SUM(l2.qty) FROM Lineitem l2 WHERE l2.ordk = o.ordk)",
        );
        let s = t.views[0].expr.to_string();
        assert!(s.contains(":="), "scalar subquery must be lifted: {s}");
        // The correlation column is unified: the inner Lineitem atom, the outer Orders
        // atom and the outer Lineitem atom all share one variable for the order key
        // (the representative of the unified class).
        assert!(s.matches("l2_ordk").count() >= 3, "{s}");
    }

    #[test]
    fn exists_translates_to_lifted_count() {
        let t = translate_sql(
            "q4",
            "SELECT COUNT(*) FROM Orders o WHERE EXISTS \
             (SELECT * FROM Lineitem l WHERE l.ordk = o.ordk)",
        );
        let s = t.views[0].expr.to_string();
        assert!(s.contains(":="));
        assert!(s.contains("> 0"));
    }

    #[test]
    fn not_exists_translates_via_indicator() {
        let t = translate_sql(
            "q22a",
            "SELECT SUM(c.acctbal) FROM Customer c WHERE NOT EXISTS \
             (SELECT * FROM Orders o WHERE o.ck = c.ck)",
        );
        let s = t.views[0].expr.to_string();
        assert!(s.contains(":="));
        // NOT is 1 - indicator.
        assert!(s.contains("-"), "{s}");
    }

    #[test]
    fn disjunction_uses_inclusion_exclusion() {
        let t = translate_sql(
            "axf",
            "SELECT SUM(a.volume - b.volume) FROM Bids b, Asks a \
             WHERE b.broker_id = a.broker_id \
             AND (a.price - b.price > 1000 OR b.price - a.price > 1000)",
        );
        let s = t.views[0].expr.to_string();
        assert!(s.contains("+"), "inclusion-exclusion sum expected: {s}");
        // The equijoin on broker_id is unified away.
        assert_eq!(t.views[0].expr.degree(), 2);
    }

    #[test]
    fn uncorrelated_subquery_like_psp() {
        let t = translate_sql(
            "psp",
            "SELECT SUM(a.price - b.price) FROM Bids b, Asks a \
             WHERE b.volume > 0.0001 * (SELECT SUM(b1.volume) FROM Bids b1) \
             AND a.volume > 0.0001 * (SELECT SUM(a1.volume) FROM Asks a1)",
        );
        let s = t.views[0].expr.to_string();
        assert_eq!(s.matches(":=").count(), 2, "{s}");
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let q = parse_query("SELECT SUM(x.a) FROM Missing x").unwrap();
        assert!(matches!(
            translate("q", &q, &catalog()),
            Err(TranslateError::UnknownTable(_))
        ));
        let q2 = parse_query("SELECT SUM(o.nope) FROM Orders o").unwrap();
        assert!(matches!(
            translate("q", &q2, &catalog()),
            Err(TranslateError::UnknownColumn(_))
        ));
    }

    #[test]
    fn non_grouped_plain_column_is_rejected() {
        let q = parse_query("SELECT o.ck, SUM(o.xch) FROM Orders o").unwrap();
        assert!(matches!(
            translate("q", &q, &catalog()),
            Err(TranslateError::Unsupported(_))
        ));
    }

    #[test]
    fn in_list_and_case_translate() {
        let t = translate_sql(
            "q12",
            "SELECT SUM(CASE WHEN o.xch IN (1, 2) THEN 1 ELSE 0 END) \
             FROM Orders o, Lineitem li WHERE o.ordk = li.ordk",
        );
        let s = t.views[0].expr.to_string();
        assert!(s.contains("="), "IN list becomes equalities: {s}");
    }
}
