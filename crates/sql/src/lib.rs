//! # DBToaster SQL frontend
//!
//! Parses the SQL fragment used by the paper's workload (select-project-join aggregate
//! queries with nested subqueries) and translates it into the AGCA calculus consumed by
//! the Higher-Order IVM compiler.
//!
//! * [`lexer`] / [`parser`] / [`ast`] — a small recursive-descent SQL parser;
//! * [`catalog`] — table definitions ([`SqlCatalog`]);
//! * [`mod@translate`] — SQL → AGCA translation producing one maintained view per aggregate
//!   plus a description of how the result columns are read back.
//!
//! ```
//! use dbtoaster_sql::prelude::*;
//!
//! let catalog: SqlCatalog = [
//!     TableDef::stream("Orders", ["ordk", "xch"]),
//!     TableDef::stream("Lineitem", ["ordk", "price"]),
//! ].into_iter().collect();
//!
//! let q = parse_query(
//!     "SELECT SUM(li.price * o.xch) FROM Orders o, Lineitem li WHERE o.ordk = li.ordk",
//! ).unwrap();
//! let plan = translate("total_sales", &q, &catalog).unwrap();
//! assert_eq!(plan.views.len(), 1);
//! assert_eq!(plan.views[0].expr.degree(), 2);
//! ```

pub mod ast;
pub mod catalog;
pub mod lexer;
pub mod parser;
pub mod translate;

pub use ast::{
    AggFunc, ArithOp, ColumnRef, Condition, SelectItem, SelectQuery, SqlCmpOp, SqlExpr, TableRef,
};
pub use catalog::{SqlCatalog, TableDef};
pub use parser::{parse_query, ParseError};
pub use translate::{translate, OutputColumn, TranslateError, TranslatedQuery, ViewSpec};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::ast::{AggFunc, SelectQuery};
    pub use crate::catalog::{SqlCatalog, TableDef};
    pub use crate::parser::{parse_query, ParseError};
    pub use crate::translate::{
        translate, OutputColumn, TranslateError, TranslatedQuery, ViewSpec,
    };
}
