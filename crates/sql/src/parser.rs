//! Recursive-descent parser for the SQL fragment.

use crate::ast::{
    AggFunc, ArithOp, ColumnRef, Condition, SelectItem, SelectQuery, SqlCmpOp, SqlExpr, TableRef,
};
use crate::lexer::{tokenize, LexError, Token};
use std::fmt;

/// Parse errors.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    /// Human-readable message.
    pub message: String,
    /// Index of the offending token.
    pub position: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} (token #{})", self.message, self.position)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError {
            message: e.message,
            position: e.position,
        }
    }
}

/// Parse a single `SELECT` query.
pub fn parse_query(sql: &str) -> Result<SelectQuery, ParseError> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let q = p.select_query()?;
    p.accept_punct(&Token::Semicolon);
    if !p.at_end() {
        return Err(p.error("unexpected trailing tokens"));
    }
    Ok(q)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

const RESERVED: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "AND", "OR", "NOT", "AS", "EXISTS", "IN", "LIKE",
    "BETWEEN", "CASE", "WHEN", "THEN", "ELSE", "END", "ON", "ORDER", "HAVING", "DATE", "SUM",
    "COUNT", "AVG", "LISTMAX",
];

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_at(&self, offset: usize) -> Option<&Token> {
        self.tokens.get(self.pos + offset)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            position: self.pos,
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn accept_kw(&mut self, kw: &str) -> bool {
        if self.is_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.accept_kw(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected keyword {kw}")))
        }
    }

    fn accept_punct(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, tok: &Token) -> Result<(), ParseError> {
        if self.accept_punct(tok) {
            Ok(())
        } else {
            Err(self.error(format!("expected {tok}")))
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s),
            _ => Err(self.error("expected identifier")),
        }
    }

    // ----------------------------------------------------------------- query

    fn select_query(&mut self) -> Result<SelectQuery, ParseError> {
        self.expect_kw("SELECT")?;
        let mut select = vec![self.select_item()?];
        while self.accept_punct(&Token::Comma) {
            select.push(self.select_item()?);
        }
        self.expect_kw("FROM")?;
        let mut from = vec![self.table_ref()?];
        while self.accept_punct(&Token::Comma) {
            from.push(self.table_ref()?);
        }
        let where_clause = if self.accept_kw("WHERE") {
            Some(self.condition()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.accept_kw("GROUP") {
            self.expect_kw("BY")?;
            group_by.push(self.column_ref()?);
            while self.accept_punct(&Token::Comma) {
                group_by.push(self.column_ref()?);
            }
        }
        Ok(SelectQuery {
            select,
            from,
            where_clause,
            group_by,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem, ParseError> {
        // `SELECT *` (used inside EXISTS subqueries) is treated as COUNT(*).
        if self.accept_punct(&Token::Star) {
            return Ok(SelectItem {
                expr: SqlExpr::Aggregate(AggFunc::Count, None),
                alias: None,
            });
        }
        let expr = self.expr()?;
        let alias = if self.accept_kw("AS") {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef, ParseError> {
        let table = self.ident()?;
        let alias = match self.peek() {
            Some(Token::Ident(s)) if !RESERVED.iter().any(|k| s.eq_ignore_ascii_case(k)) => {
                let a = s.clone();
                self.pos += 1;
                a
            }
            _ => table.clone(),
        };
        Ok(TableRef { table, alias })
    }

    fn column_ref(&mut self) -> Result<ColumnRef, ParseError> {
        let first = self.ident()?;
        if self.accept_punct(&Token::Dot) {
            let col = self.ident()?;
            Ok(ColumnRef {
                qualifier: Some(first),
                column: col,
            })
        } else {
            Ok(ColumnRef {
                qualifier: None,
                column: first,
            })
        }
    }

    // ------------------------------------------------------------- conditions

    fn condition(&mut self) -> Result<Condition, ParseError> {
        let mut left = self.and_condition()?;
        while self.accept_kw("OR") {
            let right = self.and_condition()?;
            left = Condition::Or(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn and_condition(&mut self) -> Result<Condition, ParseError> {
        let mut left = self.not_condition()?;
        while self.accept_kw("AND") {
            let right = self.not_condition()?;
            left = Condition::And(Box::new(left), Box::new(right));
        }
        Ok(left)
    }

    fn not_condition(&mut self) -> Result<Condition, ParseError> {
        if self.accept_kw("NOT") {
            let inner = self.not_condition()?;
            return Ok(Condition::Not(Box::new(inner)));
        }
        self.primary_condition()
    }

    fn primary_condition(&mut self) -> Result<Condition, ParseError> {
        if self.is_kw("EXISTS") {
            self.pos += 1;
            self.expect_punct(&Token::LParen)?;
            let q = self.select_query()?;
            self.expect_punct(&Token::RParen)?;
            return Ok(Condition::Exists(Box::new(q)));
        }
        // A parenthesized condition, unless it is the start of a scalar expression such
        // as `(a.price - b.price) > 1000` — disambiguate by attempting the condition
        // parse and falling back to the expression parse.
        if self.peek() == Some(&Token::LParen)
            && !matches!(self.peek_at(1), Some(Token::Ident(s)) if s.eq_ignore_ascii_case("SELECT"))
        {
            let save = self.pos;
            self.pos += 1;
            if let Ok(c) = self.condition() {
                if self.accept_punct(&Token::RParen) {
                    // Only a genuine grouped condition: nothing comparison-like follows.
                    if !self.peek_is_cmp() {
                        return Ok(c);
                    }
                }
            }
            self.pos = save;
        }
        let left = self.expr()?;
        if self.accept_kw("BETWEEN") {
            let lo = self.expr()?;
            self.expect_kw("AND")?;
            let hi = self.expr()?;
            return Ok(Condition::Between(left, lo, hi));
        }
        if self.accept_kw("LIKE") {
            match self.advance() {
                Some(Token::Str(p)) => return Ok(Condition::Like(left, p)),
                _ => return Err(self.error("expected string pattern after LIKE")),
            }
        }
        if self.accept_kw("NOT") {
            if self.accept_kw("LIKE") {
                match self.advance() {
                    Some(Token::Str(p)) => {
                        return Ok(Condition::Not(Box::new(Condition::Like(left, p))))
                    }
                    _ => return Err(self.error("expected string pattern after NOT LIKE")),
                }
            }
            if self.accept_kw("IN") {
                let list = self.in_list()?;
                return Ok(Condition::Not(Box::new(Condition::InList(left, list))));
            }
            return Err(self.error("expected LIKE or IN after NOT"));
        }
        if self.accept_kw("IN") {
            let list = self.in_list()?;
            return Ok(Condition::InList(left, list));
        }
        let op = self.cmp_op()?;
        let right = self.expr()?;
        Ok(Condition::Cmp(op, left, right))
    }

    fn peek_is_cmp(&self) -> bool {
        matches!(
            self.peek(),
            Some(Token::Eq | Token::Ne | Token::Lt | Token::Le | Token::Gt | Token::Ge)
        ) || self.is_kw("BETWEEN")
            || self.is_kw("IN")
            || self.is_kw("LIKE")
    }

    fn in_list(&mut self) -> Result<Vec<SqlExpr>, ParseError> {
        self.expect_punct(&Token::LParen)?;
        let mut out = vec![self.expr()?];
        while self.accept_punct(&Token::Comma) {
            out.push(self.expr()?);
        }
        self.expect_punct(&Token::RParen)?;
        Ok(out)
    }

    fn cmp_op(&mut self) -> Result<SqlCmpOp, ParseError> {
        let op = match self.peek() {
            Some(Token::Eq) => SqlCmpOp::Eq,
            Some(Token::Ne) => SqlCmpOp::Ne,
            Some(Token::Lt) => SqlCmpOp::Lt,
            Some(Token::Le) => SqlCmpOp::Le,
            Some(Token::Gt) => SqlCmpOp::Gt,
            Some(Token::Ge) => SqlCmpOp::Ge,
            _ => return Err(self.error("expected comparison operator")),
        };
        self.pos += 1;
        Ok(op)
    }

    // ------------------------------------------------------------ expressions

    fn expr(&mut self) -> Result<SqlExpr, ParseError> {
        let mut left = self.term()?;
        loop {
            if self.accept_punct(&Token::Plus) {
                let right = self.term()?;
                left = SqlExpr::Arith(ArithOp::Add, Box::new(left), Box::new(right));
            } else if self.accept_punct(&Token::Minus) {
                let right = self.term()?;
                left = SqlExpr::Arith(ArithOp::Sub, Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn term(&mut self) -> Result<SqlExpr, ParseError> {
        let mut left = self.unary()?;
        loop {
            if self.accept_punct(&Token::Star) {
                let right = self.unary()?;
                left = SqlExpr::Arith(ArithOp::Mul, Box::new(left), Box::new(right));
            } else if self.accept_punct(&Token::Slash) {
                let right = self.unary()?;
                left = SqlExpr::Arith(ArithOp::Div, Box::new(left), Box::new(right));
            } else {
                return Ok(left);
            }
        }
    }

    fn unary(&mut self) -> Result<SqlExpr, ParseError> {
        if self.accept_punct(&Token::Minus) {
            let e = self.unary()?;
            return Ok(SqlExpr::Neg(Box::new(e)));
        }
        self.primary_expr()
    }

    fn primary_expr(&mut self) -> Result<SqlExpr, ParseError> {
        match self.peek().cloned() {
            Some(Token::Int(v)) => {
                self.pos += 1;
                Ok(SqlExpr::Int(v))
            }
            Some(Token::Float(v)) => {
                self.pos += 1;
                Ok(SqlExpr::Float(v))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(SqlExpr::Str(s))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                if self.is_kw("SELECT") {
                    let q = self.select_query()?;
                    self.expect_punct(&Token::RParen)?;
                    Ok(SqlExpr::Subquery(Box::new(q)))
                } else {
                    let e = self.expr()?;
                    self.expect_punct(&Token::RParen)?;
                    Ok(e)
                }
            }
            Some(Token::Ident(name)) => {
                if name.eq_ignore_ascii_case("CASE") {
                    return self.case_expr();
                }
                if name.eq_ignore_ascii_case("DATE") {
                    self.pos += 1;
                    self.expect_punct(&Token::LParen)?;
                    let lit = match self.advance() {
                        Some(Token::Str(s)) => s,
                        _ => return Err(self.error("expected date string")),
                    };
                    self.expect_punct(&Token::RParen)?;
                    return Ok(SqlExpr::Date(parse_date(&lit).ok_or_else(|| {
                        self.error(format!("invalid date literal '{lit}'"))
                    })?));
                }
                if name.eq_ignore_ascii_case("LISTMAX") {
                    self.pos += 1;
                    self.expect_punct(&Token::LParen)?;
                    let mut args = vec![self.expr()?];
                    while self.accept_punct(&Token::Comma) {
                        args.push(self.expr()?);
                    }
                    self.expect_punct(&Token::RParen)?;
                    return Ok(SqlExpr::ListMax(args));
                }
                for (kw, func) in [
                    ("SUM", AggFunc::Sum),
                    ("COUNT", AggFunc::Count),
                    ("AVG", AggFunc::Avg),
                ] {
                    if name.eq_ignore_ascii_case(kw) {
                        self.pos += 1;
                        self.expect_punct(&Token::LParen)?;
                        if self.accept_punct(&Token::Star) {
                            self.expect_punct(&Token::RParen)?;
                            return Ok(SqlExpr::Aggregate(AggFunc::Count, None));
                        }
                        let arg = self.expr()?;
                        self.expect_punct(&Token::RParen)?;
                        return Ok(SqlExpr::Aggregate(func, Some(Box::new(arg))));
                    }
                }
                // Plain column reference.
                let col = self.column_ref()?;
                Ok(SqlExpr::Column(col))
            }
            _ => Err(self.error("expected expression")),
        }
    }

    fn case_expr(&mut self) -> Result<SqlExpr, ParseError> {
        self.expect_kw("CASE")?;
        self.expect_kw("WHEN")?;
        let when = self.condition()?;
        self.expect_kw("THEN")?;
        let then = self.expr()?;
        self.expect_kw("ELSE")?;
        let otherwise = self.expr()?;
        self.expect_kw("END")?;
        Ok(SqlExpr::Case {
            when: Box::new(when),
            then: Box::new(then),
            otherwise: Box::new(otherwise),
        })
    }
}

/// Parse `yyyy-mm-dd` into the integer `yyyymmdd`.
pub fn parse_date(s: &str) -> Option<i64> {
    let parts: Vec<&str> = s.split('-').collect();
    if parts.len() != 3 {
        return None;
    }
    let y: i64 = parts[0].parse().ok()?;
    let m: i64 = parts[1].parse().ok()?;
    let d: i64 = parts[2].parse().ok()?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some(y * 10_000 + m * 100 + d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_aggregate_query() {
        let q = parse_query(
            "SELECT o.ck, SUM(li.price * o.xch) AS total \
             FROM Orders o, Lineitem li \
             WHERE o.ordk = li.ordk GROUP BY o.ck;",
        )
        .unwrap();
        assert_eq!(q.from.len(), 2);
        assert_eq!(q.from[1].alias, "li");
        assert_eq!(q.group_by.len(), 1);
        assert_eq!(q.select.len(), 2);
        assert_eq!(q.select[1].alias.as_deref(), Some("total"));
        assert!(matches!(
            q.where_clause,
            Some(Condition::Cmp(SqlCmpOp::Eq, _, _))
        ));
    }

    #[test]
    fn parses_nested_scalar_subquery() {
        let q = parse_query(
            "SELECT SUM(l.extendedprice) FROM Lineitem l, Part p \
             WHERE p.partkey = l.partkey AND l.quantity < 0.005 * \
             (SELECT SUM(l2.quantity) FROM Lineitem l2 WHERE l2.partkey = p.partkey)",
        )
        .unwrap();
        assert_eq!(q.nesting_depth(), 1);
        let tables = q.all_tables();
        assert_eq!(tables.iter().filter(|t| *t == "Lineitem").count(), 2);
    }

    #[test]
    fn parses_exists_and_not_exists() {
        let q = parse_query(
            "SELECT COUNT(*) FROM Orders o WHERE NOT EXISTS \
             (SELECT * FROM Lineitem l WHERE l.orderkey = o.orderkey)",
        )
        .unwrap();
        match q.where_clause.unwrap() {
            Condition::Not(inner) => assert!(matches!(*inner, Condition::Exists(_))),
            other => panic!("expected NOT EXISTS, got {other:?}"),
        }
    }

    #[test]
    fn parses_date_between_in_like_case() {
        let q = parse_query(
            "SELECT SUM(CASE WHEN o.priority IN ('1-URGENT', '2-HIGH') THEN 1 ELSE 0 END) \
             FROM Orders o, Lineitem l \
             WHERE l.shipdate >= DATE('1994-01-01') \
             AND (l.discount BETWEEN 0.05 AND 0.07) \
             AND (o.comment NOT LIKE '%special%') \
             AND l.quantity < 24",
        )
        .unwrap();
        assert!(q.where_clause.is_some());
        assert!(matches!(
            q.select[0].expr,
            SqlExpr::Aggregate(AggFunc::Sum, Some(_))
        ));
    }

    #[test]
    fn parses_disjunction_of_parenthesized_conditions() {
        let q = parse_query(
            "SELECT SUM(a.p - b.p) FROM Asks a, Bids b \
             WHERE (a.price - b.price > 1000) OR (b.price - a.price > 1000)",
        )
        .unwrap();
        assert!(matches!(q.where_clause, Some(Condition::Or(_, _))));
    }

    #[test]
    fn parses_uncorrelated_double_nested() {
        // PSP from the financial workload.
        let q = parse_query(
            "SELECT SUM(a.price - b.price) FROM Bids b, Asks a \
             WHERE b.volume > 0.0001 * (SELECT SUM(b1.volume) FROM Bids b1) \
             AND a.volume > 0.0001 * (SELECT SUM(a1.volume) FROM Asks a1)",
        )
        .unwrap();
        assert_eq!(q.nesting_depth(), 1);
        assert_eq!(q.from.len(), 2);
    }

    #[test]
    fn date_parsing() {
        assert_eq!(parse_date("1995-03-15"), Some(19950315));
        assert_eq!(parse_date("1995-13-15"), None);
        assert_eq!(parse_date("nonsense"), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_query("SELECT FROM").is_err());
        assert!(parse_query("FOO BAR").is_err());
        assert!(parse_query("SELECT 1 FROM T extra garbage !!").is_err());
    }

    #[test]
    fn parses_avg_and_count_star() {
        let q = parse_query(
            "SELECT returnflag, COUNT(*) AS cnt, AVG(quantity) AS aq FROM Lineitem GROUP BY returnflag",
        )
        .unwrap();
        assert_eq!(q.select.len(), 3);
        assert!(matches!(
            q.select[1].expr,
            SqlExpr::Aggregate(AggFunc::Count, None)
        ));
        assert!(matches!(
            q.select[2].expr,
            SqlExpr::Aggregate(AggFunc::Avg, Some(_))
        ));
        assert_eq!(q.from[0].alias, "Lineitem");
    }
}
