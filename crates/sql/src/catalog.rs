//! The SQL catalog: table definitions visible to the frontend.

use serde::{Deserialize, Serialize};

/// A table definition.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableDef {
    /// Canonical table name.
    pub name: String,
    /// Column names (stored lowercase; lookups are case-insensitive).
    pub columns: Vec<String>,
    /// `true` for relations that receive updates (streams), `false` for static tables.
    pub is_stream: bool,
}

impl TableDef {
    /// A stream table.
    pub fn stream<S: Into<String>>(
        name: impl Into<String>,
        columns: impl IntoIterator<Item = S>,
    ) -> Self {
        TableDef {
            name: name.into(),
            columns: columns
                .into_iter()
                .map(|c| c.into().to_lowercase())
                .collect(),
            is_stream: true,
        }
    }

    /// A static table.
    pub fn table<S: Into<String>>(
        name: impl Into<String>,
        columns: impl IntoIterator<Item = S>,
    ) -> Self {
        TableDef {
            name: name.into(),
            columns: columns
                .into_iter()
                .map(|c| c.into().to_lowercase())
                .collect(),
            is_stream: false,
        }
    }

    /// Does the table have the named column (case-insensitive)?
    pub fn has_column(&self, column: &str) -> bool {
        let c = column.to_lowercase();
        self.columns.contains(&c)
    }
}

/// The set of tables known to the SQL frontend.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SqlCatalog {
    tables: Vec<TableDef>,
}

impl SqlCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        SqlCatalog::default()
    }

    /// Add or replace a table definition.
    pub fn add(&mut self, def: TableDef) {
        self.tables
            .retain(|t| !t.name.eq_ignore_ascii_case(&def.name));
        self.tables.push(def);
    }

    /// Look up a table by name (case-insensitive).
    pub fn get(&self, name: &str) -> Option<&TableDef> {
        self.tables
            .iter()
            .find(|t| t.name.eq_ignore_ascii_case(name))
    }

    /// All table definitions.
    pub fn tables(&self) -> &[TableDef] {
        &self.tables
    }
}

impl FromIterator<TableDef> for SqlCatalog {
    fn from_iter<T: IntoIterator<Item = TableDef>>(iter: T) -> Self {
        let mut c = SqlCatalog::new();
        for t in iter {
            c.add(t);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_is_case_insensitive() {
        let mut c = SqlCatalog::new();
        c.add(TableDef::stream("Lineitem", ["ORDERKEY", "Quantity"]));
        let t = c.get("LINEITEM").unwrap();
        assert!(t.has_column("quantity"));
        assert!(t.has_column("QUANTITY"));
        assert!(!t.has_column("nope"));
        assert!(t.is_stream);
    }

    #[test]
    fn add_replaces_existing() {
        let mut c = SqlCatalog::new();
        c.add(TableDef::stream("T", ["a"]));
        c.add(TableDef::table("t", ["a", "b"]));
        assert_eq!(c.tables().len(), 1);
        assert!(!c.get("T").unwrap().is_stream);
    }
}
