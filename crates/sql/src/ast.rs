//! Abstract syntax for the SQL fragment accepted by the frontend.
//!
//! The fragment covers the workload of the paper's evaluation: select-project-join
//! aggregate queries with `GROUP BY`, arithmetic in the select list, conjunctive and
//! disjunctive `WHERE` clauses, `BETWEEN`, `IN` lists, `LIKE`, `EXISTS` / `NOT EXISTS`
//! and scalar (correlated) subqueries compared against expressions, plus the restricted
//! `CASE WHEN ... THEN ... ELSE ... END` form used by TPC-H Q12/Q14.

use serde::{Deserialize, Serialize};

/// Aggregate functions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFunc {
    /// `SUM(expr)`
    Sum,
    /// `COUNT(*)` / `COUNT(expr)`
    Count,
    /// `AVG(expr)` — maintained as a SUM and a COUNT (generalized Higher-Order IVM).
    Avg,
}

/// Comparison operators (shared with AGCA through a simple mapping).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SqlCmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// A column reference `alias.column` or `column`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnRef {
    /// Optional table alias qualifier.
    pub qualifier: Option<String>,
    /// Column name.
    pub column: String,
}

/// Scalar-valued SQL expressions.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SqlExpr {
    /// Column reference.
    Column(ColumnRef),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal.
    Str(String),
    /// `DATE('yyyy-mm-dd')`, encoded as the integer `yyyymmdd`.
    Date(i64),
    /// Binary arithmetic.
    Arith(ArithOp, Box<SqlExpr>, Box<SqlExpr>),
    /// Unary minus.
    Neg(Box<SqlExpr>),
    /// Aggregate call (only valid in the select list or inside a scalar subquery's
    /// select list).
    Aggregate(AggFunc, Option<Box<SqlExpr>>),
    /// A scalar subquery.
    Subquery(Box<SelectQuery>),
    /// `CASE WHEN cond THEN a ELSE b END`.
    Case {
        /// Condition of the single WHEN branch.
        when: Box<Condition>,
        /// THEN expression.
        then: Box<SqlExpr>,
        /// ELSE expression.
        otherwise: Box<SqlExpr>,
    },
    /// `LISTMAX(a, b, ...)` — TPC-H helper used to guard divisions.
    ListMax(Vec<SqlExpr>),
}

/// Boolean conditions.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Condition {
    /// Conjunction.
    And(Box<Condition>, Box<Condition>),
    /// Disjunction.
    Or(Box<Condition>, Box<Condition>),
    /// Negation.
    Not(Box<Condition>),
    /// Comparison of two scalar expressions (either side may be a scalar subquery).
    Cmp(SqlCmpOp, SqlExpr, SqlExpr),
    /// `expr BETWEEN lo AND hi`.
    Between(SqlExpr, SqlExpr, SqlExpr),
    /// `expr IN (v1, v2, ...)` over literal values.
    InList(SqlExpr, Vec<SqlExpr>),
    /// `expr LIKE 'pattern'`.
    Like(SqlExpr, String),
    /// `EXISTS (subquery)`.
    Exists(Box<SelectQuery>),
}

/// An item of the select list.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SelectItem {
    /// The selected expression (an aggregate or a group-by column).
    pub expr: SqlExpr,
    /// Optional `AS` alias.
    pub alias: Option<String>,
}

/// A table in the FROM clause.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableRef {
    /// Table name.
    pub table: String,
    /// Alias (defaults to the table name).
    pub alias: String,
}

/// A `SELECT ... FROM ... [WHERE ...] [GROUP BY ...]` query.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SelectQuery {
    /// Select list.
    pub select: Vec<SelectItem>,
    /// FROM tables.
    pub from: Vec<TableRef>,
    /// Optional WHERE condition.
    pub where_clause: Option<Condition>,
    /// GROUP BY columns.
    pub group_by: Vec<ColumnRef>,
}

impl SelectQuery {
    /// All table references, including those of nested subqueries.
    pub fn all_tables(&self) -> Vec<String> {
        let mut out: Vec<String> = self.from.iter().map(|t| t.table.clone()).collect();
        fn walk_cond(c: &Condition, out: &mut Vec<String>) {
            match c {
                Condition::And(a, b) | Condition::Or(a, b) => {
                    walk_cond(a, out);
                    walk_cond(b, out);
                }
                Condition::Not(a) => walk_cond(a, out),
                Condition::Cmp(_, l, r) => {
                    walk_expr(l, out);
                    walk_expr(r, out);
                }
                Condition::Between(a, b, c) => {
                    walk_expr(a, out);
                    walk_expr(b, out);
                    walk_expr(c, out);
                }
                Condition::InList(e, vs) => {
                    walk_expr(e, out);
                    for v in vs {
                        walk_expr(v, out);
                    }
                }
                Condition::Like(e, _) => walk_expr(e, out),
                Condition::Exists(q) => out.extend(q.all_tables()),
            }
        }
        fn walk_expr(e: &SqlExpr, out: &mut Vec<String>) {
            match e {
                SqlExpr::Arith(_, a, b) => {
                    walk_expr(a, out);
                    walk_expr(b, out);
                }
                SqlExpr::Neg(a) => walk_expr(a, out),
                SqlExpr::Aggregate(_, Some(a)) => walk_expr(a, out),
                SqlExpr::Subquery(q) => out.extend(q.all_tables()),
                SqlExpr::Case {
                    when,
                    then,
                    otherwise,
                } => {
                    walk_cond(when, out);
                    walk_expr(then, out);
                    walk_expr(otherwise, out);
                }
                SqlExpr::ListMax(args) => {
                    for a in args {
                        walk_expr(a, out);
                    }
                }
                _ => {}
            }
        }
        if let Some(w) = &self.where_clause {
            walk_cond(w, &mut out);
        }
        for item in &self.select {
            walk_expr(&item.expr, &mut out);
        }
        out
    }

    /// Maximum nesting depth of subqueries (0 for a flat query).
    pub fn nesting_depth(&self) -> usize {
        fn cond_depth(c: &Condition) -> usize {
            match c {
                Condition::And(a, b) | Condition::Or(a, b) => cond_depth(a).max(cond_depth(b)),
                Condition::Not(a) => cond_depth(a),
                Condition::Cmp(_, l, r) => expr_depth(l).max(expr_depth(r)),
                Condition::Between(a, b, c) => expr_depth(a).max(expr_depth(b)).max(expr_depth(c)),
                Condition::InList(e, _) | Condition::Like(e, _) => expr_depth(e),
                Condition::Exists(q) => 1 + q.nesting_depth(),
            }
        }
        fn expr_depth(e: &SqlExpr) -> usize {
            match e {
                SqlExpr::Arith(_, a, b) => expr_depth(a).max(expr_depth(b)),
                SqlExpr::Neg(a) | SqlExpr::Aggregate(_, Some(a)) => expr_depth(a),
                SqlExpr::Subquery(q) => 1 + q.nesting_depth(),
                SqlExpr::Case {
                    then, otherwise, ..
                } => expr_depth(then).max(expr_depth(otherwise)),
                SqlExpr::ListMax(args) => args.iter().map(expr_depth).max().unwrap_or(0),
                _ => 0,
            }
        }
        self.where_clause.as_ref().map(cond_depth).unwrap_or(0).max(
            self.select
                .iter()
                .map(|s| expr_depth(&s.expr))
                .max()
                .unwrap_or(0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(q: &str, c: &str) -> SqlExpr {
        SqlExpr::Column(ColumnRef {
            qualifier: Some(q.into()),
            column: c.into(),
        })
    }

    #[test]
    fn all_tables_includes_subqueries() {
        let sub = SelectQuery {
            select: vec![SelectItem {
                expr: SqlExpr::Aggregate(AggFunc::Sum, Some(Box::new(col("b", "v")))),
                alias: None,
            }],
            from: vec![TableRef {
                table: "Bids".into(),
                alias: "b".into(),
            }],
            where_clause: None,
            group_by: vec![],
        };
        let q = SelectQuery {
            select: vec![SelectItem {
                expr: SqlExpr::Aggregate(AggFunc::Count, None),
                alias: None,
            }],
            from: vec![TableRef {
                table: "Asks".into(),
                alias: "a".into(),
            }],
            where_clause: Some(Condition::Cmp(
                SqlCmpOp::Gt,
                col("a", "volume"),
                SqlExpr::Subquery(Box::new(sub)),
            )),
            group_by: vec![],
        };
        let tables = q.all_tables();
        assert!(tables.contains(&"Asks".to_string()));
        assert!(tables.contains(&"Bids".to_string()));
        assert_eq!(q.nesting_depth(), 1);
    }
}
