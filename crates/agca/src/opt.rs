//! Expression simplification and normalization (Section 5.3 of the paper).
//!
//! The delta transform makes expressions structurally simpler (lower degree) but
//! syntactically messier: it introduces input variables, lifts of trigger variables and
//! sums of near-identical terms. This module implements the rewrites DBToaster applies
//! repeatedly, up to a fixed point:
//!
//! * **partial evaluation & algebraic identities** ([`simplify`]) — `Q + 0 = Q`,
//!   `Q * 1 = Q`, `Q * 0 = 0`, constant folding of comparisons and scalar functions;
//! * **polynomial expansion** ([`expand`]) — rewrite into a sum of multiplicative
//!   clauses ([`Monomial`]s), cancelling structurally identical terms of opposite sign
//!   (this is what collapses `Q − Q` after a nested-aggregate delta);
//! * **unification** ([`unify_factors`]) — convert equality conditions into lifts and
//!   propagate lifts of variables/constants through the rest of a clause;
//! * **range-restriction extraction** ([`extract_range_restrictions`]) — pull
//!   `(x := trigger_var)` assignments out of a clause so the update statement can bind
//!   its loop variables directly to trigger arguments;
//! * **decorrelation** ([`decorrelate`]) — turn equality-correlated nested aggregates
//!   into group-by aggregates without input variables (Q18a's `Qn → Q'n` rewrite);
//! * **canonicalization** ([`canonicalize`]) — rename variables into a canonical form so
//!   the compiler can deduplicate structurally equivalent views.

use crate::eval::apply_scalar_fn;
use crate::expr::{CmpOp, Expr};
use crate::scope::{self, var_info};
use dbtoaster_gmr::FastMap;
use dbtoaster_gmr::Value;
use std::collections::BTreeSet;

// ---------------------------------------------------------------------------
// Simplification
// ---------------------------------------------------------------------------

/// Apply algebraic identities and partial evaluation bottom-up.
pub fn simplify(expr: &Expr) -> Expr {
    let e = expr.map_children(&mut |c| simplify(c));
    match e {
        Expr::Neg(inner) => match *inner {
            Expr::Const(v) => Expr::Const(v.neg().unwrap_or(Value::long(0))),
            Expr::Neg(x) => *x,
            x if x.is_zero() => Expr::zero(),
            x => Expr::Neg(Box::new(x)),
        },
        Expr::Add(terms) => {
            let mut out: Vec<Expr> = Vec::new();
            let mut const_sum = 0.0;
            let mut saw_const = false;
            for t in flatten_add(terms) {
                if let Some(v) = t.as_const() {
                    if let Ok(x) = v.as_f64() {
                        const_sum += x;
                        saw_const = true;
                        continue;
                    }
                }
                if !t.is_zero() {
                    out.push(t);
                }
            }
            if saw_const && const_sum != 0.0 {
                out.push(const_num(const_sum));
            }
            Expr::sum_of(out)
        }
        Expr::Mul(factors) => {
            let mut out: Vec<Expr> = Vec::new();
            let mut const_prod = 1.0;
            let mut saw_const = false;
            for f in flatten_mul(factors) {
                if f.is_zero() {
                    return Expr::zero();
                }
                if let Some(v) = f.as_const() {
                    if let Ok(x) = v.as_f64() {
                        const_prod *= x;
                        saw_const = true;
                        continue;
                    }
                }
                out.push(f);
            }
            if saw_const && const_prod == 0.0 {
                return Expr::zero();
            }
            if saw_const && const_prod != 1.0 {
                out.insert(0, const_num(const_prod));
            }
            Expr::product_of(out)
        }
        Expr::AggSum(gb, body) => {
            if body.is_zero() {
                Expr::zero()
            } else if gb.is_empty() && matches!(*body, Expr::Const(_)) {
                *body
            } else if let Expr::AggSum(inner_gb, inner) = *body {
                // Sum_A(Sum_B(Q)) with A ⊆ B collapses to Sum_A(Q).
                if gb.iter().all(|g| inner_gb.contains(g)) {
                    Expr::AggSum(gb, inner)
                } else {
                    Expr::AggSum(gb, Box::new(Expr::AggSum(inner_gb, inner)))
                }
            } else {
                // Sum_A(Q) where Q's outputs are exactly A is just Q.
                let outs = scope::output_vars(&body);
                if outs.len() == gb.len() && gb.iter().all(|g| outs.contains(g)) {
                    *body
                } else {
                    Expr::AggSum(gb, body)
                }
            }
        }
        Expr::Cmp(op, l, r) => match (l.as_const(), r.as_const()) {
            (Some(a), Some(b)) => {
                if op.eval(a, b) {
                    Expr::one()
                } else {
                    Expr::zero()
                }
            }
            _ => Expr::Cmp(op, l, r),
        },
        Expr::Exists(inner) => {
            if inner.is_zero() {
                Expr::zero()
            } else if let Some(v) = inner.as_const() {
                if v.is_truthy() {
                    Expr::one()
                } else {
                    Expr::zero()
                }
            } else {
                Expr::Exists(inner)
            }
        }
        Expr::Apply(f, args) => {
            let consts: Option<Vec<Value>> = args.iter().map(|a| a.as_const().cloned()).collect();
            match consts {
                Some(vals) => match apply_scalar_fn(&f, &vals) {
                    Ok(v) => Expr::Const(v),
                    Err(_) => Expr::Apply(f, args),
                },
                None => Expr::Apply(f, args),
            }
        }
        other => other,
    }
}

fn const_num(x: f64) -> Expr {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        Expr::Const(Value::long(x as i64))
    } else {
        Expr::Const(Value::double(x))
    }
}

fn flatten_add(terms: Vec<Expr>) -> Vec<Expr> {
    let mut out = Vec::new();
    for t in terms {
        match t {
            Expr::Add(inner) => out.extend(flatten_add(inner)),
            other => out.push(other),
        }
    }
    out
}

fn flatten_mul(factors: Vec<Expr>) -> Vec<Expr> {
    let mut out = Vec::new();
    for f in factors {
        match f {
            Expr::Mul(inner) => out.extend(flatten_mul(inner)),
            other => out.push(other),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Polynomial expansion
// ---------------------------------------------------------------------------

/// A multiplicative clause: a coefficient times an ordered list of atomic factors.
#[derive(Clone, Debug, PartialEq)]
pub struct Monomial {
    /// Constant coefficient.
    pub coef: f64,
    /// Non-constant factors, in evaluation order.
    pub factors: Vec<Expr>,
}

impl Monomial {
    /// A monomial with coefficient 1 and the given factors.
    pub fn of(factors: Vec<Expr>) -> Self {
        Monomial { coef: 1.0, factors }
    }

    /// Rebuild an expression from the monomial.
    pub fn to_expr(&self) -> Expr {
        if self.coef == 0.0 {
            return Expr::zero();
        }
        let mut fs: Vec<Expr> = Vec::with_capacity(self.factors.len() + 1);
        if self.coef != 1.0 {
            fs.push(const_num(self.coef));
        }
        fs.extend(self.factors.iter().cloned());
        Expr::product_of(fs)
    }
}

/// A sum of multiplicative clauses ("disjunctive normal form" of an AGCA expression).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Polynomial {
    /// The clauses; the polynomial denotes their sum.
    pub monomials: Vec<Monomial>,
}

impl Polynomial {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Polynomial { monomials: vec![] }
    }

    fn singleton(m: Monomial) -> Self {
        Polynomial { monomials: vec![m] }
    }

    /// Combine structurally equal clauses, dropping those whose coefficients cancel.
    pub fn combine(mut self) -> Self {
        let mut out: Vec<Monomial> = Vec::with_capacity(self.monomials.len());
        for m in self.monomials.drain(..) {
            if m.coef == 0.0 {
                continue;
            }
            if let Some(existing) = out.iter_mut().find(|o| o.factors == m.factors) {
                existing.coef += m.coef;
            } else {
                out.push(m);
            }
        }
        out.retain(|m| m.coef != 0.0);
        Polynomial { monomials: out }
    }

    /// Rebuild an expression (the sum of the clauses).
    pub fn to_expr(&self) -> Expr {
        Expr::sum_of(self.monomials.iter().map(|m| m.to_expr()))
    }

    fn multiply(&self, other: &Polynomial) -> Polynomial {
        let mut out = Vec::with_capacity(self.monomials.len() * other.monomials.len());
        for a in &self.monomials {
            for b in &other.monomials {
                let mut factors = a.factors.clone();
                factors.extend(b.factors.iter().cloned());
                out.push(Monomial {
                    coef: a.coef * b.coef,
                    factors,
                });
            }
        }
        Polynomial { monomials: out }
    }
}

/// Expand an expression into a sum of multiplicative clauses (rule 2 of Figure 1).
///
/// Products are distributed over sums and constant coefficients are folded; lifted
/// subexpressions and `Exists` bodies are simplified but *not* expanded (distributing
/// through them would be unsound).
pub fn expand(expr: &Expr) -> Polynomial {
    match expr {
        Expr::Const(v) => match v.as_f64() {
            Ok(x) => {
                if x == 0.0 {
                    Polynomial::zero()
                } else {
                    Polynomial::singleton(Monomial {
                        coef: x,
                        factors: vec![],
                    })
                }
            }
            Err(_) => Polynomial::singleton(Monomial::of(vec![expr.clone()])),
        },
        Expr::Var(_) | Expr::Rel(_) | Expr::Cmp(..) | Expr::Apply(..) => {
            Polynomial::singleton(Monomial::of(vec![expr.clone()]))
        }
        Expr::Lift(x, e) => Polynomial::singleton(Monomial::of(vec![Expr::Lift(
            x.clone(),
            Box::new(simplify(e)),
        )])),
        Expr::Exists(e) => {
            Polynomial::singleton(Monomial::of(vec![Expr::Exists(Box::new(simplify(e)))]))
        }
        Expr::Neg(e) => {
            let mut p = expand(e);
            for m in &mut p.monomials {
                m.coef = -m.coef;
            }
            p
        }
        Expr::Add(terms) => {
            let mut out = Polynomial::zero();
            for t in terms {
                out.monomials.extend(expand(t).monomials);
            }
            out.combine()
        }
        Expr::Mul(factors) => {
            let mut acc = Polynomial::singleton(Monomial {
                coef: 1.0,
                factors: vec![],
            });
            for f in factors {
                acc = acc.multiply(&expand(f));
                if acc.monomials.is_empty() {
                    return Polynomial::zero();
                }
            }
            acc.combine()
        }
        Expr::AggSum(gb, e) => {
            // Summation commutes with union: distribute over the body's clauses and pull
            // constant coefficients out.
            let inner = expand(e);
            let mut out = Polynomial::zero();
            for m in inner.monomials {
                let body = Expr::product_of(m.factors.clone());
                let factor = if gb.is_empty() && m.factors.is_empty() {
                    // Sum over a pure constant is that constant.
                    const_num(1.0)
                } else {
                    Expr::AggSum(gb.clone(), Box::new(body))
                };
                out.monomials.push(Monomial {
                    coef: m.coef,
                    factors: if factor.is_one() {
                        vec![]
                    } else {
                        vec![factor]
                    },
                });
            }
            out.combine()
        }
    }
}

// ---------------------------------------------------------------------------
// Unification (lift propagation)
// ---------------------------------------------------------------------------

/// Does `var` appear in a binding position (relation argument, group-by list or lift
/// target) anywhere in the expression?
pub fn appears_in_binding_position(expr: &Expr, var: &str) -> bool {
    let mut found = false;
    expr.visit(&mut |e| match e {
        Expr::Rel(r) if r.args.iter().any(|a| a == var) => found = true,
        Expr::AggSum(gb, _) if gb.iter().any(|g| g == var) => found = true,
        Expr::Lift(x, _) if x == var => found = true,
        _ => {}
    });
    found
}

/// Unify the factors of a single multiplicative clause.
///
/// * Equality comparisons whose left side is an unbound variable become lifts.
/// * Lifts of a variable onto a fresh, unprotected variable rename that variable away.
/// * Lifts of a constant onto a fresh, unprotected variable are inlined where possible.
///
/// `bound` are externally bound variables (trigger arguments); `protected` are variables
/// that must remain visible as outputs of the clause (the target map's key variables).
pub fn unify_factors(
    factors: &[Expr],
    bound: &BTreeSet<String>,
    protected: &BTreeSet<String>,
) -> Vec<Expr> {
    let mut work: Vec<Expr> = factors.to_vec();
    let mut out: Vec<Expr> = Vec::with_capacity(work.len());
    let mut scope: BTreeSet<String> = bound.clone();

    let mut i = 0;
    while i < work.len() {
        let factor = work[i].clone();
        // Stage 1: equality comparison -> lift, when one side is a fresh variable and
        // the other side is already evaluable.
        let factor = match &factor {
            Expr::Cmp(CmpOp::Eq, l, r) => {
                let to_lift = |v: &str, other: &Expr| -> Option<Expr> {
                    if !scope.contains(v) && other.all_variables().iter().all(|x| scope.contains(x))
                    {
                        Some(Expr::lift(v.to_string(), other.clone()))
                    } else {
                        None
                    }
                };
                match (&**l, &**r) {
                    (Expr::Var(v), other) => to_lift(v, other).unwrap_or(factor.clone()),
                    (other, Expr::Var(v)) => to_lift(v, other).unwrap_or(factor.clone()),
                    _ => factor.clone(),
                }
            }
            _ => factor,
        };

        match &factor {
            Expr::Lift(x, e) if !scope.contains(x) => {
                match &**e {
                    Expr::Var(y) if !protected.contains(x) => {
                        // Rename x to y in everything that follows and drop the lift.
                        for f in work.iter_mut().skip(i + 1) {
                            *f = f.rename_var(x, y);
                        }
                        scope.insert(y.clone());
                        i += 1;
                        continue;
                    }
                    Expr::Const(_) if !protected.contains(x) => {
                        let used_in_binding = work
                            .iter()
                            .skip(i + 1)
                            .any(|f| appears_in_binding_position(f, x));
                        if !used_in_binding {
                            for f in work.iter_mut().skip(i + 1) {
                                *f = f.substitute_value(x, e);
                            }
                            i += 1;
                            continue;
                        }
                        scope.insert(x.clone());
                        out.push(factor.clone());
                        i += 1;
                        continue;
                    }
                    _ => {
                        scope.insert(x.clone());
                        out.push(factor.clone());
                        i += 1;
                        continue;
                    }
                }
            }
            _ => {}
        }

        // Default: keep the factor and record what it produces.
        if let Ok(info) = var_info(&factor, &scope) {
            scope.extend(info.outputs);
        }
        out.push(factor);
        i += 1;
    }
    out
}

/// Reorder the factors of a clause so that every factor's input variables are produced
/// by factors to its left (or are externally bound). Factors that can never be placed
/// are appended at the end in their original order.
pub fn order_factors(factors: &[Expr], bound: &BTreeSet<String>) -> Vec<Expr> {
    let mut remaining: Vec<Expr> = factors.to_vec();
    let mut out: Vec<Expr> = Vec::with_capacity(remaining.len());
    let mut scope = bound.clone();
    while !remaining.is_empty() {
        let pos = remaining.iter().position(|f| {
            var_info(f, &scope)
                .map(|i| i.inputs.is_empty())
                .unwrap_or(false)
        });
        match pos {
            Some(p) => {
                let f = remaining.remove(p);
                if let Ok(info) = var_info(&f, &scope) {
                    scope.extend(info.outputs);
                }
                out.push(f);
            }
            None => {
                out.append(&mut remaining);
                break;
            }
        }
    }
    out
}

/// Extract range-restricting assignments from a clause: factors of the form
/// `(x := t)` where `t` is a bound (trigger) variable and `x` is one of the statement's
/// loop variables. Returns the mapping `x -> t` and the remaining factors.
pub fn extract_range_restrictions(
    factors: &[Expr],
    loop_vars: &[String],
    bound: &BTreeSet<String>,
) -> (FastMap<String, String>, Vec<Expr>) {
    let mut subst: FastMap<String, String> = FastMap::default();
    let mut rest: Vec<Expr> = Vec::with_capacity(factors.len());
    for f in factors {
        if let Expr::Lift(x, e) = f {
            if loop_vars.contains(x) && !subst.contains_key(x) {
                if let Expr::Var(t) = &**e {
                    if bound.contains(t) {
                        subst.insert(x.clone(), t.clone());
                        continue;
                    }
                }
            }
        }
        rest.push(f.clone());
    }
    // Apply the substitution to the remaining factors so the loop variable disappears.
    let rename: FastMap<String, String> = subst.clone();
    let rest = rest.iter().map(|f| f.rename_vars(&rename)).collect();
    (subst, rest)
}

// ---------------------------------------------------------------------------
// Decorrelation of nested aggregates
// ---------------------------------------------------------------------------

/// Rewrite equality-correlated nested aggregates into group-by aggregates without input
/// variables: `Sum[](LI(OK1,Q) * (OK = OK1) * Q)` becomes `Sum[OK](LI(OK,Q) * Q)`.
///
/// This is the unification step the paper applies to Q18a's nested subquery before
/// compilation; it is what later allows the nested map to be keyed by the correlation
/// variable and maintained incrementally.
pub fn decorrelate(expr: &Expr) -> Expr {
    let e = expr.map_children(&mut |c| decorrelate(c));
    match e {
        Expr::AggSum(gb, body) => {
            let inner_outputs = scope::output_vars(&body);
            let mut poly = expand(&body);
            let mut extra_gb: Vec<String> = Vec::new();
            for m in &mut poly.monomials {
                let mut changed = true;
                while changed {
                    changed = false;
                    for idx in 0..m.factors.len() {
                        if let Expr::Cmp(CmpOp::Eq, l, r) = &m.factors[idx] {
                            let pair = match (&**l, &**r) {
                                (Expr::Var(a), Expr::Var(b)) => Some((a.clone(), b.clone())),
                                _ => None,
                            };
                            if let Some((a, b)) = pair {
                                let a_inner = inner_outputs.contains(&a);
                                let b_inner = inner_outputs.contains(&b);
                                // Exactly one side is produced inside: rename it to the
                                // outer correlation variable and group by it.
                                let (inner_v, outer_v) = if a_inner && !b_inner {
                                    (a, b)
                                } else if b_inner && !a_inner {
                                    (b, a)
                                } else {
                                    continue;
                                };
                                m.factors.remove(idx);
                                for f in m.factors.iter_mut() {
                                    *f = f.rename_var(&inner_v, &outer_v);
                                }
                                if !gb.contains(&outer_v) && !extra_gb.contains(&outer_v) {
                                    extra_gb.push(outer_v);
                                }
                                changed = true;
                                break;
                            }
                        }
                    }
                }
            }
            let mut new_gb = gb.clone();
            new_gb.extend(extra_gb);
            Expr::AggSum(new_gb, Box::new(poly.to_expr()))
        }
        other => other,
    }
}

// ---------------------------------------------------------------------------
// Canonicalization
// ---------------------------------------------------------------------------

/// Rename all variables of an expression to canonical names (`%0`, `%1`, …) in order of
/// first appearance. Returns the canonical expression and the original→canonical map.
///
/// Two expressions are structurally equivalent modulo variable naming iff their
/// canonical forms are equal, which is how the compiler deduplicates views
/// (Section 5.1, "Duplicate View Elimination").
pub fn canonicalize(expr: &Expr) -> (Expr, FastMap<String, String>) {
    let mut order: Vec<String> = Vec::new();
    collect_var_order(expr, &mut order);
    let map: FastMap<String, String> = order
        .iter()
        .enumerate()
        .map(|(i, v)| (v.clone(), format!("%{i}")))
        .collect();
    (expr.rename_vars(&map), map)
}

fn collect_var_order(expr: &Expr, order: &mut Vec<String>) {
    let push = |v: &String, order: &mut Vec<String>| {
        if !order.contains(v) {
            order.push(v.clone());
        }
    };
    match expr {
        Expr::Var(x) => push(x, order),
        Expr::Rel(r) => {
            for a in &r.args {
                push(a, order);
            }
        }
        Expr::AggSum(gb, e) => {
            for g in gb {
                push(g, order);
            }
            collect_var_order(e, order);
        }
        Expr::Lift(x, e) => {
            collect_var_order(e, order);
            push(x, order);
        }
        Expr::Add(ts) | Expr::Mul(ts) | Expr::Apply(_, ts) => {
            for t in ts {
                collect_var_order(t, order);
            }
        }
        Expr::Neg(e) | Expr::Exists(e) => collect_var_order(e, order),
        Expr::Cmp(_, l, r) => {
            collect_var_order(l, order);
            collect_var_order(r, order);
        }
        Expr::Const(_) => {}
    }
}

/// A compact structural key for an expression, invariant under variable renaming.
pub fn canonical_key(expr: &Expr) -> String {
    canonicalize(expr).0.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::{delta, TupleUpdate, UpdateSign};
    use crate::expr::CmpOp as Op;

    fn set(vars: &[&str]) -> BTreeSet<String> {
        vars.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn simplify_identities() {
        let e = Expr::product_of([Expr::one(), Expr::rel("R", ["a"]), Expr::one()]);
        assert_eq!(simplify(&e), Expr::rel("R", ["a"]));

        let z = Expr::product_of([Expr::rel("R", ["a"]), Expr::zero()]);
        assert!(simplify(&z).is_zero());

        let s = Expr::sum_of([Expr::zero(), Expr::rel("R", ["a"]), Expr::zero()]);
        assert_eq!(simplify(&s), Expr::rel("R", ["a"]));
    }

    #[test]
    fn simplify_folds_constants() {
        let e = Expr::product_of([Expr::val(2), Expr::val(3), Expr::rel("R", ["a"])]);
        let s = simplify(&e);
        assert_eq!(s, Expr::Mul(vec![Expr::val(6), Expr::rel("R", ["a"])]));
        let c = Expr::cmp(Op::Lt, Expr::val(1), Expr::val(2));
        assert!(simplify(&c).is_one());
        let c2 = Expr::cmp(Op::Gt, Expr::val(1), Expr::val(2));
        assert!(simplify(&c2).is_zero());
    }

    #[test]
    fn simplify_neg_and_exists() {
        assert_eq!(
            simplify(&Expr::neg(Expr::neg(Expr::var("x")))),
            Expr::var("x")
        );
        assert_eq!(simplify(&Expr::neg(Expr::val(3))), Expr::val(-3));
        assert!(simplify(&Expr::exists(Expr::zero())).is_zero());
        assert!(simplify(&Expr::exists(Expr::val(5))).is_one());
    }

    #[test]
    fn expansion_distributes_and_cancels() {
        // (R + S) * T expands into R*T + S*T.
        let e = Expr::product_of([
            Expr::sum_of([Expr::rel("R", ["a"]), Expr::rel("S", ["a"])]),
            Expr::rel("T", ["a"]),
        ]);
        let p = expand(&e);
        assert_eq!(p.monomials.len(), 2);

        // Q - Q cancels entirely.
        let q = Expr::product_of([Expr::rel("R", ["a"]), Expr::rel("T", ["a"])]);
        let diff = Expr::sum_of([q.clone(), Expr::neg(q)]);
        assert!(expand(&diff).monomials.is_empty());
    }

    #[test]
    fn expansion_example12_self_join() {
        // Δ+R(x) (R(A)*R(A)*S(B)) simplifies to (2*R(A)+1) * S(B) with A := x extracted;
        // at the polynomial level we expect 3 clauses: 2·(A:=x)*R(A)*S(B) after combine
        // merges the two symmetric terms, plus the (A:=x)*(A:=x)*S(B) clause.
        let q = Expr::product_of([
            Expr::rel("R", ["A"]),
            Expr::rel("R", ["A"]),
            Expr::rel("S", ["B"]),
        ]);
        let d = delta(
            &q,
            &TupleUpdate {
                relation: "R".into(),
                sign: UpdateSign::Insert,
                trigger_vars: vec!["x".into()],
            },
        );
        let p = expand(&simplify(&d)).combine();
        // Clauses: (A:=x)*R(A)*S(B) [coef 2 after merging the two orderings is not
        // guaranteed because factor order differs], so accept 2 or 3 clauses but require
        // total degree-1 structure.
        assert!(!p.monomials.is_empty());
        for m in &p.monomials {
            let rels = m
                .factors
                .iter()
                .filter(|f| matches!(f, Expr::Rel(r) if r.name == "R"))
                .count();
            assert!(rels <= 1, "each clause has at most one remaining R atom");
        }
    }

    #[test]
    fn unify_renames_lifted_variables() {
        // (A := r_a) * R(A, B) with A unprotected becomes R(r_a, B).
        let factors = vec![
            Expr::lift("A", Expr::var("r_a")),
            Expr::rel("R", ["A", "B"]),
        ];
        let out = unify_factors(&factors, &set(&["r_a"]), &set(&[]));
        assert_eq!(out, vec![Expr::rel("R", ["r_a", "B"])]);
    }

    #[test]
    fn unify_keeps_protected_variables() {
        let factors = vec![
            Expr::lift("A", Expr::var("r_a")),
            Expr::rel("R", ["A", "B"]),
        ];
        let out = unify_factors(&factors, &set(&["r_a"]), &set(&["A"]));
        assert_eq!(out.len(), 2);
        assert!(matches!(&out[0], Expr::Lift(x, _) if x == "A"));
    }

    #[test]
    fn unify_converts_equalities_to_lifts() {
        // R(A,B) * (C = A) * S(C,D): C is fresh, so the equality becomes a lift and is
        // then renamed away, yielding R(A,B) * S(A,D).
        let factors = vec![
            Expr::rel("R", ["A", "B"]),
            Expr::cmp(Op::Eq, Expr::var("C"), Expr::var("A")),
            Expr::rel("S", ["C", "D"]),
        ];
        let out = unify_factors(&factors, &set(&[]), &set(&[]));
        assert_eq!(
            out,
            vec![Expr::rel("R", ["A", "B"]), Expr::rel("S", ["A", "D"])]
        );
    }

    #[test]
    fn unify_inlines_constants() {
        let factors = vec![
            Expr::lift("x", Expr::val(100)),
            Expr::cmp(Op::Lt, Expr::var("x"), Expr::var("B")),
        ];
        let out = unify_factors(&factors, &set(&["B"]), &set(&[]));
        assert_eq!(out, vec![Expr::cmp(Op::Lt, Expr::val(100), Expr::var("B"))]);
    }

    #[test]
    fn ordering_places_predicates_after_their_atoms() {
        let factors = vec![
            Expr::cmp(Op::Lt, Expr::var("A"), Expr::var("C")),
            Expr::rel("R", ["A", "B"]),
            Expr::rel("S", ["C"]),
        ];
        let ordered = order_factors(&factors, &set(&[]));
        // The comparison must come after both atoms.
        let cmp_pos = ordered
            .iter()
            .position(|f| matches!(f, Expr::Cmp(..)))
            .unwrap();
        assert_eq!(cmp_pos, 2);
    }

    #[test]
    fn range_restriction_extraction() {
        // foreach A, B: M[A,B] += (A := r_a) * S(B) — the loop over A collapses.
        let factors = vec![Expr::lift("A", Expr::var("r_a")), Expr::rel("S", ["B"])];
        let (subst, rest) =
            extract_range_restrictions(&factors, &["A".into(), "B".into()], &set(&["r_a"]));
        assert_eq!(subst.get("A"), Some(&"r_a".to_string()));
        assert_eq!(rest, vec![Expr::rel("S", ["B"])]);
    }

    #[test]
    fn decorrelation_rewrites_equality_correlated_aggregate() {
        // Sum[]( LI(OK1, QTY1) * (OK = OK1) * QTY1 )  with OK free (correlated)
        // becomes  Sum[OK]( LI(OK, QTY1) * QTY1 ).
        let q = Expr::agg_sum(
            Vec::<String>::new(),
            Expr::product_of([
                Expr::rel("LI", ["OK1", "QTY1"]),
                Expr::cmp(Op::Eq, Expr::var("OK"), Expr::var("OK1")),
                Expr::var("QTY1"),
            ]),
        );
        let d = decorrelate(&q);
        match &d {
            Expr::AggSum(gb, body) => {
                assert_eq!(gb, &vec!["OK".to_string()]);
                assert!(body.to_string().contains("LI(OK, QTY1)"));
                assert!(!body.to_string().contains("="));
            }
            other => panic!("expected AggSum, got {other}"),
        }
        // The rewritten query no longer has input variables.
        assert!(scope::input_vars(&d).is_empty());
    }

    #[test]
    fn canonicalization_identifies_renamed_duplicates() {
        let a = Expr::agg_sum(
            ["B"],
            Expr::product_of([Expr::rel("R", ["A", "B"]), Expr::var("A")]),
        );
        let b = Expr::agg_sum(
            ["Y"],
            Expr::product_of([Expr::rel("R", ["X", "Y"]), Expr::var("X")]),
        );
        let c = Expr::agg_sum(
            ["Y"],
            Expr::product_of([Expr::rel("R", ["X", "Y"]), Expr::var("Y")]),
        );
        assert_eq!(canonical_key(&a), canonical_key(&b));
        assert_ne!(canonical_key(&a), canonical_key(&c));
    }

    #[test]
    fn nested_delta_cancellation_with_zero_change() {
        // If ΔQn = 0 the lift's delta is zero (handled in delta), and expansion of
        // (x := Q) - (x := Q) cancels to the empty polynomial.
        let lift = Expr::lift("x", Expr::rel("S", ["c"]));
        let diff = Expr::sum_of([lift.clone(), Expr::neg(lift)]);
        assert!(expand(&diff).monomials.is_empty());
    }
}
