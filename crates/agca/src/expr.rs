//! The AGCA abstract syntax tree.
//!
//! AGCA (AGgregate CAlculus, Section 3.2 of the paper) is a small algebraic language
//! over generalized multiset relations. Expressions are built from constants, variables,
//! relation atoms, comparisons and lifts (`x := Q`), combined with generalized union
//! (`+`), natural join (`*`) and group-by summation (`Sum_A`).
//!
//! Two ergonomic extensions of the paper's core syntax are included, both of which the
//! released DBToaster system also has:
//!
//! * [`Expr::Exists`] — the domain operator mapping non-zero multiplicities to 1, used to
//!   translate `EXISTS` / `IN` subqueries;
//! * [`Expr::Apply`] — scalar function application (division, `LISTMAX`, `LIKE`, …) used
//!   to translate arithmetic that has no multiplicity-level encoding.

use dbtoaster_gmr::FastMap;
use dbtoaster_gmr::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Comparison operators usable in [`Expr::Cmp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// The operator with its arguments swapped (`a < b` ⇔ `b > a`).
    pub fn flip(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation of the operator (`NOT (a < b)` ⇔ `a >= b`).
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// Evaluate the comparison on two values (with numeric coercion).
    pub fn eval(self, l: &Value, r: &Value) -> bool {
        match self {
            CmpOp::Eq => l == r,
            CmpOp::Ne => l != r,
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Gt => l > r,
            CmpOp::Ge => l >= r,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Scalar (value-level) functions usable in [`Expr::Apply`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ScalarFn {
    /// Division of two scalars (division by zero yields 0, see `Value::div`).
    Div,
    /// Maximum of the arguments (TPC-H's `LISTMAX`).
    ListMax,
    /// Square root of a single argument (used by the MDDB workload's `vec_length`).
    Sqrt,
    /// SQL `LIKE` with a `%`-pattern against a single string argument; yields 0/1.
    Like(String),
}

impl fmt::Display for ScalarFn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarFn::Div => write!(f, "div"),
            ScalarFn::ListMax => write!(f, "listmax"),
            ScalarFn::Sqrt => write!(f, "sqrt"),
            ScalarFn::Like(p) => write!(f, "like['{p}']"),
        }
    }
}

/// What kind of collection a relation atom refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AtomKind {
    /// A base relation that receives insertions and deletions (a "stream" in the paper).
    Stream,
    /// A static base relation (e.g. TPC-H `Nation`, `Region`); deltas w.r.t. it are zero.
    Table,
    /// A materialized view (map) maintained by the generated trigger program.
    View,
}

/// A relation or view atom `R(x1, ..., xk)`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RelRef {
    /// Relation / view name.
    pub name: String,
    /// Column variables, in relation-schema order.
    pub args: Vec<String>,
    /// Stream, static table or materialized view.
    pub kind: AtomKind,
}

/// An AGCA expression. Every expression denotes a GMR (a finite map from tuples over its
/// output variables to multiplicities), evaluated relative to a context of bound
/// variables (see [`mod@crate::eval`]).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A constant multiplicity `c` (the GMR `{<> -> c}` for numeric constants). String
    /// constants may only appear as scalar arguments of comparisons, lifts and `Apply`.
    Const(Value),
    /// The value of a bound variable, as a nullary multiplicity.
    Var(String),
    /// A relation, table or view atom.
    Rel(RelRef),
    /// Generalized union of terms.
    Add(Vec<Expr>),
    /// Natural join of factors, with left-to-right sideways information passing.
    Mul(Vec<Expr>),
    /// Additive inverse (sugar for multiplication by `-1`).
    Neg(Box<Expr>),
    /// Group-by summation `Sum_{group_by}(expr)`.
    AggSum(Vec<String>, Box<Expr>),
    /// Lift / assignment `x := expr`: binds the scalar value of `expr` to variable `x`
    /// producing the singleton `{<x: v> -> 1}`.
    Lift(String, Box<Expr>),
    /// Comparison of two scalar expressions; yields multiplicity 1 (true) or 0 (false).
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Domain operator: maps every non-zero multiplicity to 1.
    Exists(Box<Expr>),
    /// Scalar function application over scalar arguments.
    Apply(ScalarFn, Vec<Expr>),
}

impl Expr {
    // ------------------------------------------------------------------ constructors

    /// The zero of the ring (empty GMR).
    pub fn zero() -> Expr {
        Expr::Const(Value::long(0))
    }

    /// The one of the ring (`{<> -> 1}`).
    pub fn one() -> Expr {
        Expr::Const(Value::long(1))
    }

    /// A numeric constant.
    pub fn val(v: impl Into<Value>) -> Expr {
        Expr::Const(v.into())
    }

    /// A variable reference.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// A stream relation atom.
    pub fn rel<S: Into<String>>(
        name: impl Into<String>,
        args: impl IntoIterator<Item = S>,
    ) -> Expr {
        Expr::Rel(RelRef {
            name: name.into(),
            args: args.into_iter().map(Into::into).collect(),
            kind: AtomKind::Stream,
        })
    }

    /// A static table atom.
    pub fn table<S: Into<String>>(
        name: impl Into<String>,
        args: impl IntoIterator<Item = S>,
    ) -> Expr {
        Expr::Rel(RelRef {
            name: name.into(),
            args: args.into_iter().map(Into::into).collect(),
            kind: AtomKind::Table,
        })
    }

    /// A materialized view atom.
    pub fn view<S: Into<String>>(
        name: impl Into<String>,
        args: impl IntoIterator<Item = S>,
    ) -> Expr {
        Expr::Rel(RelRef {
            name: name.into(),
            args: args.into_iter().map(Into::into).collect(),
            kind: AtomKind::View,
        })
    }

    /// Sum of terms (flattens nested sums; empty sum is zero).
    pub fn sum_of(terms: impl IntoIterator<Item = Expr>) -> Expr {
        let mut out = Vec::new();
        for t in terms {
            match t {
                Expr::Add(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Expr::zero(),
            1 => out.pop().unwrap(),
            _ => Expr::Add(out),
        }
    }

    /// Product of factors (flattens nested products; empty product is one).
    pub fn product_of(factors: impl IntoIterator<Item = Expr>) -> Expr {
        let mut out = Vec::new();
        for t in factors {
            match t {
                Expr::Mul(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Expr::one(),
            1 => out.pop().unwrap(),
            _ => Expr::Mul(out),
        }
    }

    /// Group-by summation.
    pub fn agg_sum<S: Into<String>>(group_by: impl IntoIterator<Item = S>, body: Expr) -> Expr {
        Expr::AggSum(
            group_by.into_iter().map(Into::into).collect(),
            Box::new(body),
        )
    }

    /// Lift `var := body`.
    pub fn lift(var: impl Into<String>, body: Expr) -> Expr {
        Expr::Lift(var.into(), Box::new(body))
    }

    /// Comparison.
    pub fn cmp(op: CmpOp, left: Expr, right: Expr) -> Expr {
        Expr::Cmp(op, Box::new(left), Box::new(right))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn neg(e: Expr) -> Expr {
        Expr::Neg(Box::new(e))
    }

    /// Existence / domain operator.
    pub fn exists(e: Expr) -> Expr {
        Expr::Exists(Box::new(e))
    }

    /// Scalar function application.
    pub fn apply(f: ScalarFn, args: Vec<Expr>) -> Expr {
        Expr::Apply(f, args)
    }

    // ------------------------------------------------------------------ predicates

    /// Is this literally the constant zero?
    pub fn is_zero(&self) -> bool {
        matches!(self, Expr::Const(v) if v.as_f64().map(|x| x == 0.0).unwrap_or(false))
    }

    /// Is this literally the constant one?
    pub fn is_one(&self) -> bool {
        matches!(self, Expr::Const(v) if v.as_f64().map(|x| x == 1.0).unwrap_or(false))
    }

    /// Is this a constant (numeric or string)?
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Expr::Const(v) => Some(v),
            _ => None,
        }
    }

    /// Does the expression contain any relation atom of the given kind?
    pub fn contains_atom_kind(&self, kind: AtomKind) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if let Expr::Rel(r) = e {
                if r.kind == kind {
                    found = true;
                }
            }
        });
        found
    }

    /// Does the expression reference the named relation (of any kind)?
    pub fn references_relation(&self, name: &str) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if let Expr::Rel(r) = e {
                if r.name == name {
                    found = true;
                }
            }
        });
        found
    }

    /// Names of all stream relations referenced (the relations whose updates trigger
    /// maintenance).
    pub fn stream_relations(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.visit(&mut |e| {
            if let Expr::Rel(r) = e {
                if r.kind == AtomKind::Stream {
                    out.insert(r.name.clone());
                }
            }
        });
        out
    }

    /// All relation atoms (of every kind) in the expression.
    pub fn atoms(&self) -> Vec<RelRef> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Rel(r) = e {
                out.push(r.clone());
            }
        });
        out
    }

    /// The *degree* of the expression: the maximum, over the monomials of its expanded
    /// form, of the number of stream-relation atoms joined (Theorem 1 of the paper).
    /// Lifted subexpressions (nested aggregates) contribute their own degree, which is
    /// why Theorem 1 does not apply to them.
    pub fn degree(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) | Expr::Cmp(..) | Expr::Apply(..) => 0,
            Expr::Rel(r) => usize::from(r.kind == AtomKind::Stream),
            Expr::Add(ts) => ts.iter().map(Expr::degree).max().unwrap_or(0),
            Expr::Mul(fs) => fs.iter().map(Expr::degree).sum(),
            Expr::Neg(e) | Expr::AggSum(_, e) | Expr::Lift(_, e) | Expr::Exists(e) => e.degree(),
        }
    }

    // ------------------------------------------------------------------ traversal

    /// Visit every sub-expression (pre-order).
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Const(_) | Expr::Var(_) | Expr::Rel(_) => {}
            Expr::Add(ts) | Expr::Mul(ts) | Expr::Apply(_, ts) => {
                for t in ts {
                    t.visit(f);
                }
            }
            Expr::Neg(e) | Expr::AggSum(_, e) | Expr::Lift(_, e) | Expr::Exists(e) => e.visit(f),
            Expr::Cmp(_, l, r) => {
                l.visit(f);
                r.visit(f);
            }
        }
    }

    /// Rebuild the expression by mapping every child through `f` (single level).
    pub fn map_children(&self, f: &mut impl FnMut(&Expr) -> Expr) -> Expr {
        match self {
            Expr::Const(_) | Expr::Var(_) | Expr::Rel(_) => self.clone(),
            Expr::Add(ts) => Expr::Add(ts.iter().map(&mut *f).collect()),
            Expr::Mul(ts) => Expr::Mul(ts.iter().map(&mut *f).collect()),
            Expr::Apply(func, ts) => Expr::Apply(func.clone(), ts.iter().map(&mut *f).collect()),
            Expr::Neg(e) => Expr::Neg(Box::new(f(e))),
            Expr::AggSum(gb, e) => Expr::AggSum(gb.clone(), Box::new(f(e))),
            Expr::Lift(x, e) => Expr::Lift(x.clone(), Box::new(f(e))),
            Expr::Exists(e) => Expr::Exists(Box::new(f(e))),
            Expr::Cmp(op, l, r) => Expr::Cmp(*op, Box::new(f(l)), Box::new(f(r))),
        }
    }

    // ------------------------------------------------------------------ substitution

    /// Rename a variable everywhere it appears: value uses (`Var`), relation-atom
    /// arguments, group-by lists and lift targets.
    pub fn rename_var(&self, old: &str, new: &str) -> Expr {
        let mut map = FastMap::default();
        map.insert(old.to_string(), new.to_string());
        self.rename_vars(&map)
    }

    /// Rename variables everywhere according to `map`.
    pub fn rename_vars(&self, map: &FastMap<String, String>) -> Expr {
        let rn = |s: &String| map.get(s).cloned().unwrap_or_else(|| s.clone());
        match self {
            Expr::Const(_) => self.clone(),
            Expr::Var(x) => Expr::Var(rn(x)),
            Expr::Rel(r) => Expr::Rel(RelRef {
                name: r.name.clone(),
                args: r.args.iter().map(rn).collect(),
                kind: r.kind,
            }),
            Expr::AggSum(gb, e) => {
                Expr::AggSum(gb.iter().map(rn).collect(), Box::new(e.rename_vars(map)))
            }
            Expr::Lift(x, e) => Expr::Lift(rn(x), Box::new(e.rename_vars(map))),
            _ => self.map_children(&mut |c| c.rename_vars(map)),
        }
    }

    /// Replace *value uses* of a variable (i.e. `Var(name)` occurrences) with a scalar
    /// expression. Binding positions (relation args, group-by lists, lift targets) are
    /// left untouched; use [`Expr::rename_var`] for those.
    pub fn substitute_value(&self, name: &str, replacement: &Expr) -> Expr {
        match self {
            Expr::Var(x) if x == name => replacement.clone(),
            _ => self.map_children(&mut |c| c.substitute_value(name, replacement)),
        }
    }

    /// All variable names mentioned anywhere (value uses, binding positions, group-bys).
    pub fn all_variables(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.visit(&mut |e| match e {
            Expr::Var(x) => {
                out.insert(x.clone());
            }
            Expr::Rel(r) => out.extend(r.args.iter().cloned()),
            Expr::AggSum(gb, _) => out.extend(gb.iter().cloned()),
            Expr::Lift(x, _) => {
                out.insert(x.clone());
            }
            _ => {}
        });
        out
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v}"),
            Expr::Var(x) => write!(f, "{x}"),
            Expr::Rel(r) => {
                let tag = match r.kind {
                    AtomKind::Stream => "",
                    AtomKind::Table => "#",
                    AtomKind::View => "$",
                };
                write!(f, "{tag}{}({})", r.name, r.args.join(", "))
            }
            Expr::Add(ts) => {
                let parts: Vec<String> = ts.iter().map(|t| t.to_string()).collect();
                write!(f, "({})", parts.join(" + "))
            }
            Expr::Mul(ts) => {
                let parts: Vec<String> = ts.iter().map(|t| t.to_string()).collect();
                write!(f, "({})", parts.join(" * "))
            }
            Expr::Neg(e) => write!(f, "-{e}"),
            Expr::AggSum(gb, e) => write!(f, "Sum[{}]({e})", gb.join(", ")),
            Expr::Lift(x, e) => write!(f, "({x} := {e})"),
            Expr::Cmp(op, l, r) => write!(f, "({l} {op} {r})"),
            Expr::Exists(e) => write!(f, "Exists({e})"),
            Expr::Apply(func, args) => {
                let parts: Vec<String> = args.iter().map(|t| t.to_string()).collect();
                write!(f, "{func}({})", parts.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Expr {
        // Sum[B]( R(A,B) * S(B,C) * (A < C) * A )
        Expr::agg_sum(
            ["B"],
            Expr::product_of([
                Expr::rel("R", ["A", "B"]),
                Expr::rel("S", ["B", "C"]),
                Expr::cmp(CmpOp::Lt, Expr::var("A"), Expr::var("C")),
                Expr::var("A"),
            ]),
        )
    }

    #[test]
    fn constructors_flatten() {
        let e = Expr::product_of([
            Expr::Mul(vec![Expr::var("a"), Expr::var("b")]),
            Expr::var("c"),
        ]);
        assert_eq!(
            e,
            Expr::Mul(vec![Expr::var("a"), Expr::var("b"), Expr::var("c")])
        );
        assert_eq!(Expr::sum_of([]), Expr::zero());
        assert_eq!(Expr::product_of([]), Expr::one());
        assert_eq!(Expr::sum_of([Expr::var("x")]), Expr::var("x"));
    }

    #[test]
    fn degree_counts_stream_atoms() {
        assert_eq!(sample().degree(), 2);
        let with_table =
            Expr::product_of([Expr::rel("R", ["A"]), Expr::table("Nation", ["A", "N"])]);
        assert_eq!(with_table.degree(), 1);
        assert_eq!(Expr::val(5).degree(), 0);
        let union = Expr::sum_of([sample(), Expr::rel("T", ["X"])]);
        assert_eq!(union.degree(), 2);
    }

    #[test]
    fn stream_relations_collects_names() {
        let rels = sample().stream_relations();
        assert_eq!(rels.len(), 2);
        assert!(rels.contains("R") && rels.contains("S"));
        assert!(!Expr::table("Nation", ["N"])
            .stream_relations()
            .contains("Nation"));
    }

    #[test]
    fn rename_var_covers_binding_positions() {
        let e = sample().rename_var("B", "B1");
        assert!(e.all_variables().contains("B1"));
        assert!(!e.all_variables().contains("B"));
        match &e {
            Expr::AggSum(gb, _) => assert_eq!(gb, &vec!["B1".to_string()]),
            _ => panic!("expected AggSum"),
        }
    }

    #[test]
    fn substitute_value_leaves_bindings() {
        let e = sample().substitute_value("A", &Expr::val(7));
        // The relation atom still binds A; only the value uses changed.
        assert!(e.all_variables().contains("A"));
        let display = e.to_string();
        assert!(display.contains("(7 < C)"));
        assert!(display.contains("R(A, B)"));
    }

    #[test]
    fn cmp_op_flip_negate_eval() {
        assert_eq!(CmpOp::Lt.flip(), CmpOp::Gt);
        assert_eq!(CmpOp::Le.negate(), CmpOp::Gt);
        assert!(CmpOp::Lt.eval(&Value::long(1), &Value::double(1.5)));
        assert!(!CmpOp::Eq.eval(&Value::str("a"), &Value::str("b")));
    }

    #[test]
    fn display_round_trips_structure() {
        let s = sample().to_string();
        assert!(s.starts_with("Sum[B]("));
        assert!(s.contains("R(A, B)"));
        assert!(s.contains("(A < C)"));
    }

    #[test]
    fn zero_one_predicates() {
        assert!(Expr::zero().is_zero());
        assert!(Expr::one().is_one());
        assert!(!Expr::val(2).is_one());
        assert!(Expr::Const(Value::double(0.0)).is_zero());
    }
}
