//! Compiled trigger kernels: flat, slot-addressed execution plans for AGCA
//! delta statements.
//!
//! The paper's headline refresh rates come from *compiling* trigger statements
//! into straight-line imperative code (Section 5 generates C++), not from
//! interpreting the calculus per event. This module is the reproduction of
//! that step: a trigger statement's right-hand side is lowered **once, at
//! program-compile time** into a plan ([`CompiledStmt`]) — a small tree of
//! [`Op`]s in which
//!
//! * every variable reference is a pre-resolved [`Slot`] into a fixed-size
//!   frame of [`Value`]s (no name lookups, no `Bindings` scans at run time);
//! * every relation atom carries a prebuilt **pattern template** whose bound
//!   holes are filled from the frame into a reusable pattern buffer (no
//!   per-event pattern allocation);
//! * the product evaluation order — including the lift hoisting that turns
//!   `M(ok) * (ok := t)` into an indexed probe — is chosen statically by the
//!   same `product_order_by`/`scalar_ready_by` analysis the interpreter
//!   uses per event, so compiled and interpreted execution agree by
//!   construction.
//!
//! ## Execution model
//!
//! A plan executes as a *pipeline*: each [`Op`] binds frame slots and emits
//! `(frame, multiplicity)` continuations downstream, bottoming out in the
//! statement sink which materializes `(key, multiplicity)` rows from the
//! statement's pre-resolved key slots into a reusable output buffer. The
//! engine then applies the buffered rows to the target map — exactly the
//! read-everything-then-write discipline of the interpreter, so statements
//! whose right-hand side reads their own target keep their semantics.
//!
//! Grouping (`AggSum`) needs no runtime work in this model: multiplicities are
//! combined additively by the accumulating sink, and multiplication
//! distributes over addition in the GMR ring, so emitting ungrouped rows is
//! denotationally identical to grouping eagerly. What `AggSum` *does* affect
//! is lowering-time scope: variables bound inside the aggregate and not in its
//! group-by list go out of scope, so a later mention of the same name compiles
//! to a fresh slot — mirroring the interpreter's schema projection. The two
//! non-linear operators are handled specially: [`Op::Exists`] materializes its
//! input into a reusable scratch group map and clamps each group to
//! multiplicity one; nested aggregates in scalar position become
//! [`Scalar::SubSum`], a sub-plan whose emissions are summed into a single
//! value.
//!
//! ## Slot / frame discipline
//!
//! Slots are allocated during lowering, trigger variables first (slot `i` =
//! trigger variable `i`, which is how the engine seeds the frame from the
//! event tuple), then one slot per binder (atom argument first occurrence,
//! lift target) in evaluation order. Slots are never reused — the frame is a
//! few dozen values at most — and lowering guarantees every slot is written
//! before it is read, so the executor never checks for unbound slots. A name
//! already in scope is never re-bound: a repeated atom argument becomes a
//! pattern constraint (bound) or an equality check (free repetition), and a
//! lift onto a bound name becomes an equality filter, matching the
//! interpreter's context semantics.
//!
//! ## Lowering rules (sketch)
//!
//! | AGCA form | lowers to |
//! |---|---|
//! | `Const(c)` / `Var(x)` in multiplicity position | [`Op::ConstMult`] / [`Op::SlotMult`] |
//! | `R(args)` all-bound | [`Op::Probe`] (single map probe) |
//! | `R(args)` with free args | [`Op::Scan`] (index-backed cursor, binds slots) |
//! | `A * B * …` | [`Op::Product`] in statically hoisted order |
//! | `A + B + …` | [`Op::Sum`] with per-term slot unification |
//! | `-A` | [`Op::Neg`] (multiplicity negation) |
//! | `Sum_gb(A)` | [`Op::AggSum`] (scope projection; grouping deferred to the sink) |
//! | `x := e`, `x` unbound / bound | [`Op::LiftBind`] / [`Op::LiftEq`] |
//! | `l op r` | [`Op::CmpFilter`] |
//! | `Exists(A)` | [`Op::Exists`] (scratch group map, clamp to 1) |
//! | scalar positions | [`Scalar`] (value-level ops + [`Scalar::SubSum`] sub-plans) |
//!
//! Lowering is best-effort: any construct whose static boundness cannot be
//! established (an unbound variable, sum terms with mismatched outputs, a
//! collection with unbound columns in scalar position, a non-numeric constant
//! in multiplicity position) makes [`lower_statement`] return `None` and the
//! engine falls back to the AST interpreter for that statement — which is also
//! the differential-testing oracle for the statements that *do* compile.
//!
//! ## Banded prelude scans
//!
//! Statements like axfinder's spend their time in a *prelude*: a fused scan
//! over a loop-invariant map filtered by a range predicate on the event tuple
//! (`b_price > t_price + k`, say). Driven over a multi-entry batch run, the
//! same map is walked once per entry with only the bound changing. Lowering
//! detects this shape statically ([`BandSpec`]): a fused-scan comparison
//! whose two sides are linear in exactly one scan-bound key slot with `±1`
//! coefficients, rearranged into `key < bound` / `key > bound` (or their
//! inclusive forms) where `bound` is computable before the scan binds
//! anything. At run time, when a statement is driven over a run of
//! [`BAND_MIN_RUN_ENTRIES`] or more entries, the executor builds a
//! `BandCache` for the scanned map once per (prelude, loop-invariant
//! bounds) pair: keys sorted ascending with prefix sums of the scan's
//! emissions. Each entry's range predicate then resolves to a contiguous
//! band of the sorted keys, answered by binary search plus a prefix-sum
//! subtraction instead of a full traversal.
//!
//! **Exactness.** A prefix-sum subtraction reassociates the float additions a
//! traversal would do in map order, so the cache is only used when the sums
//! are exactly representable: every emitted multiplicity and every key must
//! be a finite integer-valued double, magnitudes (and their running sums)
//! bounded well inside `2^53`, and the comparison bound itself an exact
//! integer. Any violation — at build time or per lookup — disables the cache
//! for that prelude and the executor falls back to the plain traversal, so
//! banded and unbanded execution are bit-identical, not approximately equal.
//! Caches live for one run: `prepare` resets the run-entry count to 1, so
//! per-event and entry-major processing never see a stale band.

use crate::eval::{matches_pattern, product_order_by, EvalError, RelationSource};
use crate::expr::{CmpOp, Expr, RelRef, ScalarFn};
use dbtoaster_gmr::{FastMap, Tuple, Value};
use serde::{Deserialize, Serialize};
use std::cell::{Cell, RefCell};

/// A pre-resolved frame index (see the module docs on slot discipline).
pub type Slot = u16;

/// A compiled scalar expression: evaluates to a single [`Value`] against the
/// frame, mirroring the interpreter's `eval_scalar_with`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Scalar {
    /// A literal value.
    Const(Value),
    /// The current value of a frame slot.
    Slot(Slot),
    /// Value-level negation.
    Neg(Box<Scalar>),
    /// Value-level sum (folded left-to-right from `0`, like the interpreter).
    Add(Vec<Scalar>),
    /// Value-level product (folded left-to-right from `1`).
    Mul(Vec<Scalar>),
    /// Scalar function application.
    Apply(ScalarFn, Vec<Scalar>),
    /// A comparison in scalar position, yielding `1.0` / `0.0` as a double
    /// (the interpreter routes this through a scalar GMR, producing a double).
    Cmp(CmpOp, Box<Scalar>, Box<Scalar>),
    /// A collection expression in scalar position whose output columns are all
    /// bound (e.g. a decorrelated nested aggregate probed with its keys): run
    /// the sub-plan and sum the emitted multiplicities.
    SubSum(Box<Op>),
}

/// One operator of a compiled plan. Each op receives an incoming multiplicity,
/// optionally binds frame slots, and emits zero or more continuations
/// downstream (see the module docs on the pipeline execution model).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Emit a constant multiplicity.
    ConstMult(f64),
    /// Emit a slot's numeric value as a multiplicity.
    SlotMult(Slot),
    /// Emit a computed scalar's numeric value as a multiplicity.
    ScalarMult(Scalar),
    /// Fully bound atom lookup: fill the pattern buffer from `template` and
    /// emit the stored multiplicity of the single matching tuple, if present.
    Probe {
        /// Relation / view / map name.
        rel: String,
        /// Pattern buffer index (see [`KernelState`]).
        buf: u16,
        /// One frame slot per atom position.
        template: Vec<Slot>,
    },
    /// Cursor over an atom with free positions: for every tuple matching the
    /// bound positions, check free-position equalities (repeated variables),
    /// bind the `binds` slots from the tuple and emit its multiplicity.
    Scan {
        /// Relation / view / map name.
        rel: String,
        /// Pattern buffer index (see [`KernelState`]).
        buf: u16,
        /// Per position: `Some(slot)` = bound hole filled from the frame,
        /// `None` = free.
        template: Vec<Option<Slot>>,
        /// `(tuple position, frame slot)` bindings for first occurrences of
        /// free variables.
        binds: Vec<(u16, Slot)>,
        /// `(position, earlier position)` equality checks for repeated free
        /// variables.
        eqs: Vec<(u16, u16)>,
    },
    /// Natural join: run the factors as nested loops, in the statically chosen
    /// order, multiplying multiplicities.
    Product(Vec<Op>),
    /// Generalized union: run every term against the same downstream
    /// continuation (distributivity makes this exact in the GMR ring).
    Sum(Vec<Op>),
    /// Additive inverse: negate the inner multiplicities.
    Neg(Box<Op>),
    /// Group-by summation. Grouping itself is deferred to the accumulating
    /// sink; the marker documents the scope projection applied at lowering.
    AggSum(Box<Op>),
    /// Bind a slot to a computed scalar and emit multiplicity 1 (a lift whose
    /// target is unbound).
    LiftBind {
        /// Slot to bind.
        slot: Slot,
        /// Value to bind it to.
        value: Scalar,
    },
    /// A lift onto an already-bound variable: emit 1 if the computed value
    /// equals the slot's current value, else prune.
    LiftEq {
        /// Slot holding the previously bound value.
        slot: Slot,
        /// Value to compare against.
        value: Scalar,
    },
    /// Comparison filter: emit 1 if the comparison holds, else prune.
    CmpFilter {
        /// Comparison operator.
        cmp: CmpOp,
        /// Left operand.
        left: Scalar,
        /// Right operand.
        right: Scalar,
    },
    /// Domain operator: materialize the inner emissions into a scratch group
    /// map keyed by the slots the inner plan binds, then emit multiplicity 1
    /// per surviving (non-cancelled) group.
    Exists {
        /// The materialized sub-plan.
        inner: Box<Op>,
        /// Slots the inner plan binds (the group key; rebound per group when
        /// re-emitting).
        slots: Vec<Slot>,
        /// Scratch map index (see [`KernelState`]).
        scratch: u16,
    },
}

/// A numeric-only compiled scalar, evaluated directly on `f64`s in the fused
/// fast path. Exactness relative to the [`Value`]-level evaluator is
/// guaranteed by construction plus runtime guards: pure-integer chains bail
/// out (to the exact general path) whenever a leaf or intermediate magnitude
/// exceeds 2^53, and string-valued slots bail at the leaf.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum NumExpr {
    /// A numeric literal.
    Const(f64),
    /// A frame slot (must hold a numeric at runtime; strings bail).
    Slot(Slot),
    /// Negation.
    Neg(Box<NumExpr>),
    /// Left-folded sum.
    Add(Vec<NumExpr>),
    /// Left-folded product.
    Mul(Vec<NumExpr>),
}

/// One step of a fast fused-member pipeline, mirroring the general ops in
/// order (so zero-weight short-circuits behave identically).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FastOp {
    /// A comparison filter.
    Pred(CmpOp, NumExpr, NumExpr),
    /// A multiplicative weight.
    Weight(NumExpr),
}

/// One member of a [`FusedScan`]: the per-entry continuation (filters and
/// weights) of one hoisted sub-aggregate, summed into `dest`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FusedMember {
    /// Ops applied to every scanned entry (no further iteration sources).
    pub cont: Vec<Op>,
    /// Numeric specialization of `cont`, used when present and falling back
    /// to `cont` per entry whenever a guard trips (see [`NumExpr`]).
    pub fast: Option<Vec<FastOp>>,
    /// Frame slot receiving the member's total (as a double).
    pub dest: Slot,
    /// Banded-lookup specialization of `fast`: present when every fast op is
    /// a range comparison linear in one scanned column (see [`BandSpec`]).
    pub band: Option<BandSpec>,
}

/// A banded-lookup specialization of one fused member: every op of its fast
/// pipeline is a range comparison (`<`, `<=`, `>`, `>=`) that is linear, with
/// coefficient ±1, in exactly one scanned column — so the member's total is
/// the sum of the multiplicities of the entries whose key falls in one
/// interval. When a delta run re-executes the same prelude scan for many
/// batch entries, the executor sorts the scanned entries by that column
/// *once* per distinct set of bound template values and answers each member
/// with two binary searches over prefix sums instead of a full traversal
/// (axfinder's six price-band aggregates are the canonical case: O(log n)
/// per batch entry instead of O(n)).
///
/// Bit-exactness with the per-entry traversal is guaranteed by runtime
/// guards, not by construction: the banded answer is used only when every
/// scanned key, every multiplicity and every bound-expression leaf is a
/// nonzero integer-valued finite number and all magnitude sums stay below
/// 2^53. In that regime every f64 addition both paths perform is exact
/// integer arithmetic, so the algebraic rearrangement `price - key > 1000 ⇔
/// key < price - 1000` is an identity and prefix-sum differences equal the
/// traversal's running sums. Any guard violation falls back to the full
/// traversal for that batch entry (or marks the cache line unusable).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BandSpec {
    /// The scanned tuple position whose value is the band key.
    pub key_pos: u16,
    /// Normalized constraints `key cmp bound`, all of which must hold. The
    /// bound expressions read only slots that are invariant during the scan
    /// (trigger slots), never scan-bound slots.
    pub ranges: Vec<(CmpOp, NumExpr)>,
}

/// A loop-invariant sub-aggregate scan hoisted into the statement prelude.
///
/// Several [`Scalar::SubSum`] sub-plans of one statement often traverse the
/// same bucket with the same pattern (axfinder's six `Sum[](M(bk,p) * filter)`
/// terms are the canonical case). Because such a sub-plan reads only trigger
/// slots (plus what its own scan binds), its value is the same wherever in the
/// statement it is evaluated — so it is computed **once**, before the main
/// plan, and sub-plans sharing a scan signature share a **single** bucket
/// traversal with one accumulator per member. The main plan then just reads
/// the result slots. (The prelude runs unconditionally, even when the main
/// plan would short-circuit on a zero factor; the store is read-only during a
/// statement, so this can never change a result.)
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FusedScan {
    /// Relation / view / map name.
    pub rel: String,
    /// Pattern buffer index (see [`KernelState`]).
    pub buf: u16,
    /// Per position: `Some(slot)` = bound hole filled from the frame,
    /// `None` = free.
    pub template: Vec<Option<Slot>>,
    /// Union of all members' `(tuple position, frame slot)` bindings.
    pub binds: Vec<(u16, Slot)>,
    /// `(position, earlier position)` equality checks.
    pub eqs: Vec<(u16, u16)>,
    /// The fused sub-aggregates.
    pub members: Vec<FusedMember>,
    /// Does the scan read nothing from the trigger slots (neither through its
    /// template holes nor through any member's filters/weights)? Such a scan
    /// produces the same totals for every entry of a delta batch, so the
    /// batch executor runs it **once per batch** instead of once per entry
    /// (see [`CompiledStmt::execute_batch_entry`]).
    pub entry_invariant: bool,
    /// When every member carries a [`BandSpec`] on the same scanned position,
    /// that position: the whole traversal can be replaced by banded lookups
    /// against a sorted per-run cache (see [`BandSpec`]).
    pub band_pos: Option<u16>,
}

/// A compiled trigger statement: the lowered right-hand side plus the
/// pre-resolved key slots and the buffer shapes its execution needs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CompiledStmt {
    /// Hoisted loop-invariant sub-aggregate scans, run before `plan` (see
    /// [`FusedScan`]).
    pub prelude: Vec<FusedScan>,
    /// The lowered right-hand side.
    pub plan: Op,
    /// One frame slot per target key column, in key order.
    pub key_slots: Vec<Slot>,
    /// Total number of frame slots the plan addresses.
    pub frame_size: u16,
    /// Arity of each pattern buffer used by the plan's atoms.
    pub pattern_arities: Vec<u16>,
    /// Number of scratch group maps used by `Exists` operators.
    pub scratch_maps: u16,
    /// Number of leading frame slots seeded from the event tuple.
    pub trigger_slots: u16,
    /// The trigger slots the plan (or its prelude, or the key) actually
    /// reads, sorted. Seeding only these — instead of the full event tuple —
    /// matters for wide schemas: a TPC-H lineitem statement typically touches
    /// 3–5 of 16 columns, and per-entry seeding is a large share of a small
    /// kernel's batch cost.
    pub used_trigger_slots: Vec<Slot>,
}

// ---------------------------------------------------------------------------
// Lowering
// ---------------------------------------------------------------------------

/// Why a statement could not be lowered (the engine falls back to the
/// interpreter; the reason is only used by tests and diagnostics).
#[derive(Clone, Copy, Debug)]
pub struct Unsupported(pub &'static str);

struct Lowerer {
    /// Visible bindings, innermost last (mirrors the interpreter's context +
    /// accumulator columns at every point of the recursion).
    scope: Vec<(String, Slot)>,
    /// Slot pins for sum-term unification: while lowering the later terms of a
    /// `Sum`, binders reuse the slot the first term assigned to the same name,
    /// so downstream slot references are term-independent. A pinned slot's
    /// former binding is out of scope whenever a later binder claims it, so
    /// reuse never aliases two live values.
    pinned: Vec<(String, Slot)>,
    next_slot: u32,
    pattern_arities: Vec<u16>,
    scratch_maps: u16,
}

impl Lowerer {
    fn new() -> Self {
        Lowerer {
            scope: Vec::new(),
            pinned: Vec::new(),
            next_slot: 0,
            pattern_arities: Vec::new(),
            scratch_maps: 0,
        }
    }

    fn lookup(&self, name: &str) -> Option<Slot> {
        self.scope
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|&(_, s)| s)
    }

    fn bind(&mut self, name: &str) -> Result<Slot, Unsupported> {
        let slot = match self.pinned.iter().rev().find(|(n, _)| n == name) {
            Some(&(_, s)) => s,
            None => {
                if self.next_slot >= u16::MAX as u32 {
                    return Err(Unsupported("frame slot overflow"));
                }
                let s = self.next_slot as Slot;
                self.next_slot += 1;
                s
            }
        };
        self.scope.push((name.to_string(), slot));
        Ok(slot)
    }

    fn alloc_pattern(&mut self, arity: usize) -> Result<u16, Unsupported> {
        if arity > u16::MAX as usize || self.pattern_arities.len() >= u16::MAX as usize {
            return Err(Unsupported("pattern buffer overflow"));
        }
        self.pattern_arities.push(arity as u16);
        Ok((self.pattern_arities.len() - 1) as u16)
    }

    fn lower_op(&mut self, e: &Expr) -> Result<Op, Unsupported> {
        match e {
            Expr::Const(v) => match v.as_f64() {
                Ok(f) => Ok(Op::ConstMult(f)),
                Err(_) => Err(Unsupported("non-numeric constant in multiplicity position")),
            },
            Expr::Var(x) => self
                .lookup(x)
                .map(Op::SlotMult)
                .ok_or(Unsupported("unbound variable in multiplicity position")),
            Expr::Rel(r) => self.lower_atom(r),
            Expr::Add(terms) => self.lower_sum(terms),
            Expr::Mul(factors) => self.lower_product(factors),
            Expr::Neg(inner) => Ok(Op::Neg(Box::new(self.lower_op(inner)?))),
            Expr::AggSum(gb, inner) => {
                let mark = self.scope.len();
                let inner = self.lower_op(inner)?;
                // Keep the group-by columns bound by the inner plan visible;
                // everything else the inner plan bound goes out of scope
                // (the interpreter projects the result onto `gb`).
                let mut keep: Vec<(String, Slot)> = Vec::new();
                for g in gb {
                    let pos = self
                        .scope
                        .iter()
                        .rposition(|(n, _)| n == g)
                        .ok_or(Unsupported("unbound group-by variable"))?;
                    if pos >= mark && !keep.iter().any(|(n, _)| n == g) {
                        keep.push(self.scope[pos].clone());
                    }
                }
                self.scope.truncate(mark);
                if keep.is_empty() {
                    // The aggregate exposes no new bindings downstream (its
                    // group-by columns, if any, are all outer-bound, so every
                    // group collapses onto the context's key). It is therefore
                    // a pure scalar factor: sum the inner emissions into one
                    // value instead of streaming per-entry rows — this is what
                    // turns axfinder-style statements with half a dozen
                    // `Sum[](M(bk,p) * filter)` terms from O(entries) map
                    // writes per event into O(terms).
                    return Ok(Op::ScalarMult(Scalar::SubSum(Box::new(Op::AggSum(
                        Box::new(inner),
                    )))));
                }
                self.scope.extend(keep);
                Ok(Op::AggSum(Box::new(inner)))
            }
            Expr::Lift(x, body) => {
                let value = self.lower_scalar(body)?;
                match self.lookup(x) {
                    Some(slot) => Ok(Op::LiftEq { slot, value }),
                    None => {
                        let slot = self.bind(x)?;
                        Ok(Op::LiftBind { slot, value })
                    }
                }
            }
            Expr::Cmp(op, l, r) => Ok(Op::CmpFilter {
                cmp: *op,
                left: self.lower_scalar(l)?,
                right: self.lower_scalar(r)?,
            }),
            Expr::Exists(inner) => {
                let mark = self.scope.len();
                let inner = self.lower_op(inner)?;
                let slots: Vec<Slot> = self.scope[mark..].iter().map(|&(_, s)| s).collect();
                if self.scratch_maps == u16::MAX {
                    return Err(Unsupported("scratch map overflow"));
                }
                let scratch = self.scratch_maps;
                self.scratch_maps += 1;
                // The bindings stay visible: `Exists` preserves its input
                // schema, only multiplicities change.
                Ok(Op::Exists {
                    inner: Box::new(inner),
                    slots,
                    scratch,
                })
            }
            Expr::Apply(f, args) => {
                let args = args
                    .iter()
                    .map(|a| self.lower_scalar(a))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Op::ScalarMult(Scalar::Apply(f.clone(), args)))
            }
        }
    }

    fn lower_atom(&mut self, r: &RelRef) -> Result<Op, Unsupported> {
        let arity = r.args.len();
        let mut template: Vec<Option<Slot>> = Vec::with_capacity(arity);
        let mut eqs: Vec<(u16, u16)> = Vec::new();
        // First free occurrence of each unbound argument name, by position.
        let mut firsts: Vec<(usize, &str)> = Vec::new();
        for (i, a) in r.args.iter().enumerate() {
            if let Some(slot) = self.lookup(a) {
                template.push(Some(slot));
            } else if let Some(&(j, _)) = firsts.iter().find(|(_, n)| *n == a) {
                template.push(None);
                eqs.push((i as u16, j as u16));
            } else {
                template.push(None);
                firsts.push((i, a));
            }
        }
        let buf = self.alloc_pattern(arity)?;
        if firsts.is_empty() && eqs.is_empty() {
            let template: Vec<Slot> = template
                .into_iter()
                .map(|t| t.expect("all bound"))
                .collect();
            return Ok(Op::Probe {
                rel: r.name.clone(),
                buf,
                template,
            });
        }
        let mut binds: Vec<(u16, Slot)> = Vec::with_capacity(firsts.len());
        for (i, a) in firsts {
            binds.push((i as u16, self.bind(a)?));
        }
        Ok(Op::Scan {
            rel: r.name.clone(),
            buf,
            template,
            binds,
            eqs,
        })
    }

    fn lower_product(&mut self, factors: &[Expr]) -> Result<Op, Unsupported> {
        // Statically choose the same evaluation order the interpreter would:
        // boundness at this node is structural, so the per-event analysis
        // moves wholesale to compile time.
        let order = {
            let scope = &self.scope;
            product_order_by(factors, &|n| scope.iter().rev().any(|(s, _)| s == n))
        };
        let mut ops = Vec::with_capacity(factors.len());
        match order {
            Some(perm) => {
                for &i in perm.iter() {
                    ops.push(self.lower_op(&factors[i as usize])?);
                }
            }
            None => {
                for f in factors {
                    ops.push(self.lower_op(f)?);
                }
            }
        }
        Ok(Op::Product(ops))
    }

    fn lower_sum(&mut self, terms: &[Expr]) -> Result<Op, Unsupported> {
        let mark = self.scope.len();
        let pin_mark = self.pinned.len();
        let mut ops = Vec::with_capacity(terms.len());
        let mut first_outputs: Vec<(String, Slot)> = Vec::new();
        for (k, t) in terms.iter().enumerate() {
            self.scope.truncate(mark);
            let op = self.lower_op(t);
            let op = match op {
                Ok(op) => op,
                Err(e) => {
                    self.pinned.truncate(pin_mark);
                    return Err(e);
                }
            };
            let mut outputs: Vec<(String, Slot)> = self.scope[mark..].to_vec();
            outputs.sort();
            if k == 0 {
                first_outputs = outputs;
                // Pin the first term's output slots so later terms' binders
                // land in the same frame positions.
                self.pinned.extend(self.scope[mark..].iter().cloned());
            } else if outputs != first_outputs {
                // The interpreter unions term results by column *set*; terms
                // with different output sets would panic there, and a term
                // binding a pinned name only in a dead inner scope would leave
                // a slot aliased — fall back to interpretation for both.
                self.pinned.truncate(pin_mark);
                return Err(Unsupported("sum terms bind different outputs"));
            }
            ops.push(op);
        }
        self.pinned.truncate(pin_mark);
        self.scope.truncate(mark);
        let restore: Vec<(String, Slot)> = first_outputs;
        self.scope.extend(restore);
        Ok(Op::Sum(ops))
    }

    fn lower_scalar(&mut self, e: &Expr) -> Result<Scalar, Unsupported> {
        match e {
            Expr::Const(v) => Ok(Scalar::Const(v.clone())),
            Expr::Var(x) => self
                .lookup(x)
                .map(Scalar::Slot)
                .ok_or(Unsupported("unbound variable in scalar position")),
            Expr::Neg(inner) => Ok(Scalar::Neg(Box::new(self.lower_scalar(inner)?))),
            Expr::Add(ts) => Ok(Scalar::Add(
                ts.iter()
                    .map(|t| self.lower_scalar(t))
                    .collect::<Result<_, _>>()?,
            )),
            Expr::Mul(ts) => Ok(Scalar::Mul(
                ts.iter()
                    .map(|t| self.lower_scalar(t))
                    .collect::<Result<_, _>>()?,
            )),
            Expr::Apply(f, args) => Ok(Scalar::Apply(
                f.clone(),
                args.iter()
                    .map(|a| self.lower_scalar(a))
                    .collect::<Result<_, _>>()?,
            )),
            Expr::Cmp(op, l, r) => Ok(Scalar::Cmp(
                *op,
                Box::new(self.lower_scalar(l)?),
                Box::new(self.lower_scalar(r)?),
            )),
            // Collection-valued expression in scalar position: compile a
            // sub-plan and sum its emissions. Sound only when every output
            // column is already bound — if the sub-plan binds new visible
            // slots, the interpreter would raise `NotScalar`; fall back.
            Expr::Rel(_) | Expr::AggSum(..) | Expr::Lift(..) | Expr::Exists(_) => {
                let mark = self.scope.len();
                let op = self.lower_op(e)?;
                if self.scope.len() != mark {
                    self.scope.truncate(mark);
                    return Err(Unsupported("unbound columns in scalar position"));
                }
                Ok(Scalar::SubSum(Box::new(op)))
            }
        }
    }
}

/// Lower one trigger statement to a compiled kernel. `trigger_vars` seed frame
/// slots `0..n` (positionally matching the event tuple); `key_vars` name the
/// target map's key columns. Returns `None` when any construct cannot be
/// statically resolved — the engine then interprets this statement.
pub fn lower_statement(
    trigger_vars: &[String],
    key_vars: &[String],
    rhs: &Expr,
) -> Option<CompiledStmt> {
    let mut lw = Lowerer::new();
    for v in trigger_vars {
        // Duplicate trigger variable names shadow like the interpreter's
        // context: every position gets a slot, innermost lookup wins.
        lw.bind(v).ok()?;
    }
    let plan = lw.lower_op(rhs).ok()?;
    // A bound name is never re-bound during lowering, so innermost lookup is
    // equivalent to the interpreter's trigger-bindings-first key resolution.
    let key_slots: Option<Vec<Slot>> = key_vars.iter().map(|kv| lw.lookup(kv)).collect();
    let mut stmt = CompiledStmt {
        prelude: Vec::new(),
        plan,
        key_slots: key_slots?,
        frame_size: lw.next_slot as u16,
        pattern_arities: lw.pattern_arities,
        scratch_maps: lw.scratch_maps,
        trigger_slots: trigger_vars.len() as u16,
        used_trigger_slots: Vec::new(),
    };
    hoist_invariant_subsums(&mut stmt);
    stmt.used_trigger_slots = used_trigger_slots(&stmt);
    Some(stmt)
}

/// The trigger slots a compiled statement consumes: reads of the main plan,
/// reads of every hoisted prelude scan (bound template holes and member
/// continuations), and trigger-bound key slots.
fn used_trigger_slots(stmt: &CompiledStmt) -> Vec<Slot> {
    let mut reads = Vec::new();
    op_reads(&stmt.plan, &mut reads);
    for fs in &stmt.prelude {
        reads.extend(fs.template.iter().flatten().copied());
        for m in &fs.members {
            for op in &m.cont {
                op_reads(op, &mut reads);
            }
        }
    }
    reads.extend(stmt.key_slots.iter().copied());
    reads.retain(|s| (*s as usize) < stmt.trigger_slots as usize);
    reads.sort_unstable();
    reads.dedup();
    reads
}

// ---------------------------------------------------------------------------
// Loop-invariant sub-aggregate hoisting and shared-scan fusion
// ---------------------------------------------------------------------------

/// Slots read by an op tree (frame positions whose value it consumes).
fn op_reads(op: &Op, out: &mut Vec<Slot>) {
    match op {
        Op::ConstMult(_) => {}
        Op::SlotMult(s) => out.push(*s),
        Op::ScalarMult(s) => scalar_reads(s, out),
        Op::Probe { template, .. } => out.extend(template.iter().copied()),
        Op::Scan { template, .. } => out.extend(template.iter().flatten().copied()),
        Op::Product(ops) | Op::Sum(ops) => {
            for o in ops {
                op_reads(o, out);
            }
        }
        Op::Neg(inner) | Op::AggSum(inner) => op_reads(inner, out),
        Op::LiftBind { value, .. } => scalar_reads(value, out),
        Op::LiftEq { slot, value } => {
            out.push(*slot);
            scalar_reads(value, out);
        }
        Op::CmpFilter { left, right, .. } => {
            scalar_reads(left, out);
            scalar_reads(right, out);
        }
        Op::Exists { inner, .. } => op_reads(inner, out),
    }
}

/// Slots written by an op tree (scan bindings, lift targets, exists rebinds).
fn op_writes(op: &Op, out: &mut Vec<Slot>) {
    match op {
        Op::Scan { binds, .. } => out.extend(binds.iter().map(|&(_, s)| s)),
        Op::Product(ops) | Op::Sum(ops) => {
            for o in ops {
                op_writes(o, out);
            }
        }
        Op::Neg(inner) | Op::AggSum(inner) => op_writes(inner, out),
        Op::LiftBind { slot, .. } => out.push(*slot),
        Op::Exists { inner, slots, .. } => {
            out.extend(slots.iter().copied());
            op_writes(inner, out);
        }
        Op::ScalarMult(s) | Op::LiftEq { value: s, .. } => scalar_writes(s, out),
        Op::CmpFilter { left, right, .. } => {
            scalar_writes(left, out);
            scalar_writes(right, out);
        }
        Op::ConstMult(_) | Op::SlotMult(_) | Op::Probe { .. } => {}
    }
}

fn scalar_reads(s: &Scalar, out: &mut Vec<Slot>) {
    match s {
        Scalar::Const(_) => {}
        Scalar::Slot(slot) => out.push(*slot),
        Scalar::Neg(inner) => scalar_reads(inner, out),
        Scalar::Add(xs) | Scalar::Mul(xs) | Scalar::Apply(_, xs) => {
            for x in xs {
                scalar_reads(x, out);
            }
        }
        Scalar::Cmp(_, l, r) => {
            scalar_reads(l, out);
            scalar_reads(r, out);
        }
        Scalar::SubSum(op) => op_reads(op, out),
    }
}

fn scalar_writes(s: &Scalar, out: &mut Vec<Slot>) {
    match s {
        Scalar::SubSum(op) => op_writes(op, out),
        Scalar::Neg(inner) => scalar_writes(inner, out),
        Scalar::Add(xs) | Scalar::Mul(xs) | Scalar::Apply(_, xs) => {
            for x in xs {
                scalar_writes(x, out);
            }
        }
        Scalar::Cmp(_, l, r) => {
            scalar_writes(l, out);
            scalar_writes(r, out);
        }
        Scalar::Const(_) | Scalar::Slot(_) => {}
    }
}

/// May `op` appear in a fused member's per-entry continuation? Anything
/// without a further iteration source or sub-plan qualifies.
fn simple_cont_op(op: &Op) -> bool {
    match op {
        Op::ConstMult(_) | Op::SlotMult(_) => true,
        Op::ScalarMult(s) | Op::LiftBind { value: s, .. } | Op::LiftEq { value: s, .. } => {
            simple_scalar(s)
        }
        Op::CmpFilter { left, right, .. } => simple_scalar(left) && simple_scalar(right),
        Op::Product(ops) | Op::Sum(ops) => ops.iter().all(simple_cont_op),
        Op::Neg(inner) | Op::AggSum(inner) => simple_cont_op(inner),
        Op::Probe { .. } | Op::Scan { .. } | Op::Exists { .. } => false,
    }
}

fn simple_scalar(s: &Scalar) -> bool {
    match s {
        Scalar::Const(_) | Scalar::Slot(_) => true,
        Scalar::Neg(inner) => simple_scalar(inner),
        Scalar::Add(xs) | Scalar::Mul(xs) | Scalar::Apply(_, xs) => xs.iter().all(simple_scalar),
        Scalar::Cmp(_, l, r) => simple_scalar(l) && simple_scalar(r),
        Scalar::SubSum(_) => false,
    }
}

struct Hoister {
    trigger_slots: u16,
    next_slot: u32,
    groups: Vec<FusedScan>,
}

impl Hoister {
    fn hoist_op(&mut self, op: &mut Op) {
        match op {
            Op::ScalarMult(s) => self.hoist_scalar(s),
            Op::Product(ops) | Op::Sum(ops) => {
                for o in ops {
                    self.hoist_op(o);
                }
            }
            Op::Neg(inner) | Op::AggSum(inner) => self.hoist_op(inner),
            Op::LiftBind { value, .. } | Op::LiftEq { value, .. } => self.hoist_scalar(value),
            Op::CmpFilter { left, right, .. } => {
                self.hoist_scalar(left);
                self.hoist_scalar(right);
            }
            Op::Exists { inner, .. } => self.hoist_op(inner),
            Op::ConstMult(_) | Op::SlotMult(_) | Op::Probe { .. } | Op::Scan { .. } => {}
        }
    }

    fn hoist_scalar(&mut self, s: &mut Scalar) {
        match s {
            Scalar::SubSum(op) => {
                // Hoist inner sub-sums first (a nested eligible aggregate may
                // make the outer one simple enough too — and is itself worth
                // hoisting regardless).
                self.hoist_op(op);
                if let Some(dest) = self.try_extract(op) {
                    *s = Scalar::Slot(dest);
                }
            }
            Scalar::Neg(inner) => self.hoist_scalar(inner),
            Scalar::Add(xs) | Scalar::Mul(xs) | Scalar::Apply(_, xs) => {
                for x in xs {
                    self.hoist_scalar(x);
                }
            }
            Scalar::Cmp(_, l, r) => {
                self.hoist_scalar(l);
                self.hoist_scalar(r);
            }
            Scalar::Const(_) | Scalar::Slot(_) => {}
        }
    }

    /// Extract a `SubSum` plan of shape `AggSum*(Product[Scan, cont…])` (or a
    /// bare scan) whose reads are confined to trigger slots plus its own
    /// bindings, merging it into a fused prelude scan. Returns the result
    /// slot on success.
    fn try_extract(&mut self, op: &Op) -> Option<Slot> {
        // Strip grouping markers (grouping is a no-op for an accumulating sink).
        let mut body = op;
        while let Op::AggSum(inner) = body {
            body = inner;
        }
        let (scan, cont) = match body {
            Op::Scan { .. } => (body, &[][..]),
            Op::Product(ops) => match ops.split_first() {
                Some((first @ Op::Scan { .. }, rest)) => (first, rest),
                _ => return None,
            },
            _ => return None,
        };
        if !cont.iter().all(simple_cont_op) {
            return None;
        }
        let Op::Scan {
            rel,
            buf,
            template,
            binds,
            eqs,
        } = scan
        else {
            return None;
        };
        // Invariance: every slot the sub-plan reads is either a trigger slot
        // or written by the sub-plan itself (its scan bindings and any
        // internal lifts).
        let mut reads = Vec::new();
        op_reads(body, &mut reads);
        let mut own = Vec::new();
        op_writes(body, &mut own);
        if !reads
            .iter()
            .all(|s| (*s as usize) < self.trigger_slots as usize || own.contains(s))
        {
            return None;
        }
        if self.next_slot >= u16::MAX as u32 {
            return None;
        }
        // Batch invariance: a sub-plan that reads no trigger slot at all (its
        // reads are entirely its own bindings) computes the same total for
        // every entry of a delta batch.
        let entry_invariant = !reads
            .iter()
            .any(|s| (*s as usize) < self.trigger_slots as usize);
        let dest = self.next_slot as Slot;
        self.next_slot += 1;
        let fast = compile_fast(cont);
        let band = fast.as_deref().and_then(|f| member_band(f, binds));
        let member = FusedMember {
            fast,
            cont: cont.to_vec(),
            dest,
            band,
        };
        // With equal templates and equality checks, the bound positions are
        // fully determined (first free occurrences), so (rel, template, eqs)
        // is the complete scan signature.
        if let Some(group) = self
            .groups
            .iter_mut()
            .find(|g| g.rel == *rel && g.template == *template && g.eqs == *eqs)
        {
            // Same scan signature: share the traversal; each member keeps its
            // own bind slots (written together per entry). One variant member
            // makes the whole traversal per-entry (re-accumulating invariant
            // members redundantly but correctly).
            for &b in binds {
                if !group.binds.contains(&b) {
                    group.binds.push(b);
                }
            }
            group.members.push(member);
            group.entry_invariant &= entry_invariant;
            return Some(dest);
        }
        self.groups.push(FusedScan {
            rel: rel.clone(),
            buf: *buf,
            template: template.clone(),
            binds: binds.clone(),
            eqs: eqs.clone(),
            members: vec![member],
            entry_invariant,
            band_pos: None,
        });
        Some(dest)
    }
}

/// `a cmp b ⇔ b mirror(cmp) a`.
fn mirror_cmp(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Ge => CmpOp::Le,
        other => other,
    }
}

/// Flatten an `Add`/`Neg` tree into signed `Slot`/`Const` leaves
/// (`true` = negated). Returns `false` if the tree contains `Mul` — such
/// predicates stay on the per-entry path.
fn flatten_linear(e: &NumExpr, neg: bool, out: &mut Vec<(bool, NumExpr)>) -> bool {
    match e {
        NumExpr::Const(_) | NumExpr::Slot(_) => {
            out.push((neg, e.clone()));
            true
        }
        NumExpr::Neg(x) => flatten_linear(x, !neg, out),
        NumExpr::Add(xs) => xs.iter().all(|x| flatten_linear(x, neg, out)),
        NumExpr::Mul(_) => false,
    }
}

/// Rebuild a flat signed-leaf list into a [`NumExpr`].
fn bound_expr(leaves: Vec<(bool, NumExpr)>) -> NumExpr {
    let mut terms: Vec<NumExpr> = leaves
        .into_iter()
        .map(|(n, e)| if n { NumExpr::Neg(Box::new(e)) } else { e })
        .collect();
    match terms.len() {
        0 => NumExpr::Const(0.0),
        1 => terms.pop().unwrap(),
        _ => NumExpr::Add(terms),
    }
}

/// Derive a [`BandSpec`] from a member's fast pipeline against the member's
/// own scan bindings: no weights, and every predicate a range comparison in
/// which exactly one leaf — always over the same scanned position — is a
/// scan-bound slot with coefficient ±1 (reachable through `Add`/`Neg` only).
/// Each predicate is rearranged into `key cmp bound`; the rearrangement is an
/// *algebraic* identity, made exact at run time by the integer guards
/// documented on [`BandSpec`].
fn member_band(fast: &[FastOp], binds: &[(u16, Slot)]) -> Option<BandSpec> {
    let key_slot = |e: &NumExpr| match e {
        NumExpr::Slot(s) => binds.iter().find(|(_, bs)| bs == s).map(|(p, _)| *p),
        _ => None,
    };
    let mut key_pos: Option<u16> = None;
    let mut ranges = Vec::new();
    for op in fast {
        let FastOp::Pred(cmp, l, r) = op else {
            return None;
        };
        if matches!(cmp, CmpOp::Eq | CmpOp::Ne) {
            return None;
        }
        let mut left = Vec::new();
        let mut right = Vec::new();
        if !flatten_linear(l, false, &mut left) || !flatten_linear(r, false, &mut right) {
            return None;
        }
        let lk: Vec<usize> = (0..left.len())
            .filter(|&i| key_slot(&left[i].1).is_some())
            .collect();
        let rk: Vec<usize> = (0..right.len())
            .filter(|&i| key_slot(&right[i].1).is_some())
            .collect();
        let (key_in_left, idx) = match (lk.as_slice(), rk.as_slice()) {
            ([i], []) => (true, *i),
            ([], [i]) => (false, *i),
            _ => return None,
        };
        let (mut rest, other) = if key_in_left {
            (left, right)
        } else {
            (right, left)
        };
        let (negated, key_leaf) = rest.remove(idx);
        let pos = key_slot(&key_leaf).unwrap();
        if *key_pos.get_or_insert(pos) != pos {
            return None;
        }
        // Orient the key's side left: `±key + rest cmp_l other`.
        let cmp_l = if key_in_left { *cmp } else { mirror_cmp(*cmp) };
        let (cmp_k, bound) = if !negated {
            // key cmp_l other - rest
            let terms: Vec<_> = other
                .into_iter()
                .chain(rest.into_iter().map(|(n, e)| (!n, e)))
                .collect();
            (cmp_l, terms)
        } else {
            // -key + rest cmp_l other ⇔ key mirror(cmp_l) rest - other
            let terms: Vec<_> = rest
                .into_iter()
                .chain(other.into_iter().map(|(n, e)| (!n, e)))
                .collect();
            (mirror_cmp(cmp_l), terms)
        };
        ranges.push((cmp_k, bound_expr(bound)));
    }
    key_pos.map(|kp| BandSpec {
        key_pos: kp,
        ranges,
    })
}

/// Specialize a fused member's continuation into numeric fast ops, when every
/// step is a comparison filter or a multiplicative weight over numeric-only
/// scalars. Returns `None` (general path only) otherwise.
fn compile_fast(cont: &[Op]) -> Option<Vec<FastOp>> {
    cont.iter()
        .map(|op| match op {
            Op::CmpFilter { cmp, left, right } => {
                Some(FastOp::Pred(*cmp, num_expr(left)?, num_expr(right)?))
            }
            Op::ConstMult(c) => Some(FastOp::Weight(NumExpr::Const(*c))),
            Op::SlotMult(s) => Some(FastOp::Weight(NumExpr::Slot(*s))),
            Op::ScalarMult(s) => Some(FastOp::Weight(num_expr(s)?)),
            _ => None,
        })
        .collect()
}

fn num_expr(s: &Scalar) -> Option<NumExpr> {
    match s {
        // Integer literals beyond 2^53 are not exactly representable; leave
        // the member on the exact general path.
        Scalar::Const(Value::Long(v)) if v.unsigned_abs() <= (1u64 << 53) => {
            Some(NumExpr::Const(*v as f64))
        }
        Scalar::Const(Value::Double(d)) => Some(NumExpr::Const(*d)),
        Scalar::Slot(slot) => Some(NumExpr::Slot(*slot)),
        Scalar::Neg(inner) => Some(NumExpr::Neg(Box::new(num_expr(inner)?))),
        Scalar::Add(xs) => Some(NumExpr::Add(
            xs.iter().map(num_expr).collect::<Option<_>>()?,
        )),
        Scalar::Mul(xs) => Some(NumExpr::Mul(
            xs.iter().map(num_expr).collect::<Option<_>>()?,
        )),
        _ => None,
    }
}

const EXACT_INT_BOUND: f64 = (1u64 << 53) as f64;

/// Evaluate a [`NumExpr`] against the frame. Returns `(value, int_pure)`
/// where `int_pure` tracks whether the [`Value`]-level evaluator would have
/// stayed in exact `i64` arithmetic; `None` bails to the general path (string
/// slot, or an exact-integer chain leaving the 2^53-safe range).
fn eval_num(e: &NumExpr, frame: &[Value]) -> Option<(f64, bool)> {
    match e {
        NumExpr::Const(c) => Some((*c, c.fract() == 0.0 && c.abs() <= EXACT_INT_BOUND)),
        NumExpr::Slot(slot) => match &frame[*slot as usize] {
            Value::Long(v) => {
                if v.unsigned_abs() <= (1u64 << 53) {
                    Some((*v as f64, true))
                } else {
                    None
                }
            }
            Value::Double(d) => Some((*d, false)),
            Value::Str(_) => None,
        },
        NumExpr::Neg(inner) => {
            let (v, ip) = eval_num(inner, frame)?;
            Some((-v, ip))
        }
        NumExpr::Add(xs) => {
            let mut acc = 0.0;
            let mut ip = true;
            for x in xs {
                let (v, xp) = eval_num(x, frame)?;
                acc += v;
                ip &= xp;
                // `>=`: a result of exactly 2^53 may itself be 2^53+1 rounded
                // down, while i64 arithmetic would have stayed exact.
                if ip && acc.abs() >= EXACT_INT_BOUND {
                    return None;
                }
            }
            Some((acc, ip))
        }
        NumExpr::Mul(xs) => {
            let mut acc = 1.0;
            let mut ip = true;
            for x in xs {
                let (v, xp) = eval_num(x, frame)?;
                acc *= v;
                ip &= xp;
                if ip && acc.abs() >= EXACT_INT_BOUND {
                    return None;
                }
            }
            Some((acc, ip))
        }
    }
}

/// Evaluate a banded range bound: `Add`/`Neg` folds over finite, nonzero,
/// integer-valued leaves only. Returns `(value, Σ|leaf|)`; the magnitude sum
/// is what bounds every intermediate of both the original and the rearranged
/// comparison (see [`BandSpec`]). `None` = fall back to the full traversal.
fn eval_bound(e: &NumExpr, frame: &[Value]) -> Option<(f64, f64)> {
    match e {
        NumExpr::Const(c) => bound_leaf(*c),
        NumExpr::Slot(s) => match &frame[*s as usize] {
            Value::Long(v) if v.unsigned_abs() <= (1u64 << 53) => bound_leaf(*v as f64),
            Value::Double(d) => bound_leaf(*d),
            _ => None,
        },
        NumExpr::Neg(x) => {
            let (v, mag) = eval_bound(x, frame)?;
            Some((-v, mag))
        }
        NumExpr::Add(xs) => {
            let (mut acc, mut mag) = (0.0f64, 0.0f64);
            for x in xs {
                let (v, m) = eval_bound(x, frame)?;
                acc += v;
                mag += m;
            }
            (mag < EXACT_INT_BOUND).then_some((acc, mag))
        }
        NumExpr::Mul(_) => None,
    }
}

fn bound_leaf(v: f64) -> Option<(f64, f64)> {
    (v.is_finite() && v.fract() == 0.0 && v != 0.0 && v.abs() <= EXACT_INT_BOUND)
        .then(|| (v, v.abs()))
}

/// Evaluate a comparison exactly as `CmpOp::eval` does on numeric [`Value`]s:
/// equality through `Value`'s normalized bit patterns, ordering through IEEE
/// `total_cmp`.
#[inline]
fn num_cmp(op: CmpOp, l: f64, r: f64) -> bool {
    use std::cmp::Ordering;
    match op {
        CmpOp::Eq => Value::numeric_bits(l) == Value::numeric_bits(r),
        CmpOp::Ne => Value::numeric_bits(l) != Value::numeric_bits(r),
        CmpOp::Lt => l.total_cmp(&r) == Ordering::Less,
        CmpOp::Le => l.total_cmp(&r) != Ordering::Greater,
        CmpOp::Gt => l.total_cmp(&r) == Ordering::Greater,
        CmpOp::Ge => l.total_cmp(&r) != Ordering::Less,
    }
}

/// Outcome of the fast member pipeline for one entry.
enum FastOutcome {
    /// Contribution to add to the accumulator.
    Contribute(f64),
    /// Filtered out (or zero-weight short-circuit): no contribution.
    Skip,
    /// A guard tripped: re-evaluate this entry through the general ops.
    Bail,
}

fn run_fast(ops: &[FastOp], frame: &[Value], mut mult: f64) -> FastOutcome {
    for op in ops {
        match op {
            FastOp::Pred(cmp, l, r) => {
                let Some((lv, _)) = eval_num(l, frame) else {
                    return FastOutcome::Bail;
                };
                let Some((rv, _)) = eval_num(r, frame) else {
                    return FastOutcome::Bail;
                };
                if !num_cmp(*cmp, lv, rv) {
                    return FastOutcome::Skip;
                }
            }
            FastOp::Weight(w) => {
                let Some((v, _)) = eval_num(w, frame) else {
                    return FastOutcome::Bail;
                };
                mult *= v;
                if mult == 0.0 {
                    // Mirror the general executor's zero short-circuit.
                    return FastOutcome::Skip;
                }
            }
        }
    }
    FastOutcome::Contribute(mult)
}

/// Hoist loop-invariant [`Scalar::SubSum`] scans into the statement prelude,
/// fusing sub-plans that share a scan signature into a single traversal (see
/// [`FusedScan`]).
fn hoist_invariant_subsums(stmt: &mut CompiledStmt) {
    let mut h = Hoister {
        trigger_slots: stmt.trigger_slots,
        next_slot: stmt.frame_size as u32,
        groups: Vec::new(),
    };
    let mut plan = std::mem::replace(&mut stmt.plan, Op::ConstMult(0.0));
    h.hoist_op(&mut plan);
    stmt.plan = plan;
    stmt.frame_size = h.next_slot as u16;
    stmt.prelude = h.groups;
    // A scan is banded only when every fused member banded on the same
    // scanned position (members joining a group later may not have).
    for g in &mut stmt.prelude {
        g.band_pos = match g.members.split_first() {
            Some((first, rest)) => first.band.as_ref().map(|b| b.key_pos).filter(|&p| {
                rest.iter()
                    .all(|m| m.band.as_ref().is_some_and(|b| b.key_pos == p))
            }),
            None => None,
        };
    }
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

/// Work counters for one attribution slot (one target view, in the engine's
/// use). Increments are plain `Cell` adds on L1-resident lines — about a
/// cycle each, cheap enough to run unconditionally on the kernel hot paths —
/// and the owner drains them with [`KernelCounters::take`] at its own
/// (amortized) cadence.
#[derive(Debug, Default)]
pub struct KernelCounters {
    /// Fully bound index probes executed ([`Op::Probe`]).
    pub probes: Cell<u64>,
    /// Full scans executed ([`Op::Scan`] plus fused-prelude traversals).
    pub scans: Cell<u64>,
    /// Entries visited by those scans.
    pub entries_scanned: Cell<u64>,
    /// Fused prelude traversals (one bucket walk answering every member).
    pub fused_scans: Cell<u64>,
    /// Banded prelude lookups answered from the sorted prefix-sum cache.
    pub banded_hits: Cell<u64>,
    /// Banded prelude lookups that bailed to a full traversal.
    pub banded_bails: Cell<u64>,
}

/// A drained, plain-integer copy of one [`KernelCounters`] block.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct KernelWork {
    /// See [`KernelCounters::probes`].
    pub probes: u64,
    /// See [`KernelCounters::scans`].
    pub scans: u64,
    /// See [`KernelCounters::entries_scanned`].
    pub entries_scanned: u64,
    /// See [`KernelCounters::fused_scans`].
    pub fused_scans: u64,
    /// See [`KernelCounters::banded_hits`].
    pub banded_hits: u64,
    /// See [`KernelCounters::banded_bails`].
    pub banded_bails: u64,
}

impl KernelCounters {
    /// Copy the counters out and reset them.
    pub fn take(&self) -> KernelWork {
        KernelWork {
            probes: self.probes.take(),
            scans: self.scans.take(),
            entries_scanned: self.entries_scanned.take(),
            fused_scans: self.fused_scans.take(),
            banded_hits: self.banded_hits.take(),
            banded_bails: self.banded_bails.take(),
        }
    }
}

#[inline]
fn bump(c: &Cell<u64>) {
    c.set(c.get() + 1);
}

/// Reusable per-engine kernel execution state: the slot frame, one pattern
/// buffer per atom, scratch group maps for `Exists`, and the buffered output
/// rows. Steady-state execution allocates nothing — every buffer is sized on
/// first use and recycled.
#[derive(Debug, Default)]
pub struct KernelState {
    /// The slot frame. `frame[0..trigger_slots]` is seeded by the caller from
    /// the event tuple before [`CompiledStmt::execute`].
    pub frame: Vec<Value>,
    patterns: Vec<Vec<Option<Value>>>,
    scratch: Vec<FastMap<Tuple, f64>>,
    /// Per-member accumulators for fused prelude scans.
    fused_accs: Vec<Cell<f64>>,
    /// Banded prelude cache lines, keyed by `(prelude index, bound template
    /// values)`. Valid only while the store is unchanged — cleared by
    /// [`KernelState::prepare`].
    bands: FastMap<(u16, Tuple), BandCache>,
    /// Number of delta-run entries the caller will execute against the
    /// current prepared state (see [`KernelState::set_run_entries`]).
    run_entries: u32,
    /// Buffered `(key, multiplicity)` emissions of the last execution.
    pub out: Vec<(Tuple, f64)>,
    /// Work-counter blocks, one per attribution slot (the engine maps slots
    /// to target views). Slot 0 always exists and doubles as the discard
    /// block when no finer attribution is configured.
    pub counter_slots: Vec<KernelCounters>,
    /// The block the next execution's counters land in. Set by the engine
    /// before [`CompiledStmt::execute`]; out-of-range values clamp to the
    /// last block.
    pub counter_slot: usize,
}

impl KernelState {
    /// Fresh, empty state.
    pub fn new() -> Self {
        KernelState::default()
    }

    /// Size the buffers for a statement and clear the output. Must be called
    /// (and the trigger slots seeded) before [`CompiledStmt::execute`].
    pub fn prepare(&mut self, stmt: &CompiledStmt) {
        if self.frame.len() < stmt.frame_size as usize {
            self.frame.resize(stmt.frame_size as usize, Value::Long(0));
        }
        while self.patterns.len() < stmt.pattern_arities.len() {
            self.patterns.push(Vec::new());
        }
        for (i, &arity) in stmt.pattern_arities.iter().enumerate() {
            // `resize` down keeps capacity, so alternating between statements
            // settles with every buffer at its high-water arity.
            self.patterns[i].resize(arity as usize, None);
        }
        while self.scratch.len() < stmt.scratch_maps as usize {
            self.scratch.push(FastMap::default());
        }
        let members = stmt
            .prelude
            .iter()
            .map(|f| f.members.len())
            .max()
            .unwrap_or(0);
        if self.fused_accs.len() < members {
            self.fused_accs.resize(members, Cell::new(0.0));
        }
        self.bands.clear();
        self.run_entries = 1;
        self.out.clear();
    }

    /// Tell the kernel how many delta-run entries the caller will execute
    /// against the current prepared state (the store must stay unchanged in
    /// between, which the buffered-apply discipline guarantees). Runs of at
    /// least [`BAND_MIN_RUN_ENTRIES`] entries enable the banded prelude
    /// cache; [`KernelState::prepare`] resets the count to 1.
    pub fn set_run_entries(&mut self, n: usize) {
        self.run_entries = n.min(u32::MAX as usize) as u32;
    }

    /// Make sure at least `n` counter blocks exist (never shrinks).
    pub fn ensure_counter_slots(&mut self, n: usize) {
        while self.counter_slots.len() < n.max(1) {
            self.counter_slots.push(KernelCounters::default());
        }
    }
}

/// Minimum delta-run entries before a banded prelude pays for its sort.
pub const BAND_MIN_RUN_ENTRIES: u32 = 4;

/// One banded prelude cache line: the matching entries of one fused scan for
/// one set of bound template values, sorted by band key, with exact integer
/// prefix sums of their multiplicities.
#[derive(Debug, Default)]
struct BandCache {
    /// Did every build-time guard hold (integer nonzero keys and integer
    /// multiplicities, magnitudes within the exact-f64 range)? `false` is a
    /// negative cache: these bound values keep full traversals.
    ok: bool,
    /// Band-key values, ascending by `total_cmp`.
    keys: Vec<f64>,
    /// `prefix[i]` = exact sum of the first `i` entries' multiplicities.
    prefix: Vec<f64>,
    /// Largest |key|, part of the rearrangement-exactness magnitude bound.
    max_abs_key: f64,
}

/// Downstream continuation of an emission: the remaining pipeline stages plus
/// the terminal sink.
enum Tail<'a> {
    /// Statement sink: materialize the key from `key_slots` and push a row.
    Rows,
    /// Scalar sub-plan sink: add the multiplicity to the accumulator.
    Acc(&'a Cell<f64>),
    /// `Exists` sink: accumulate into a group map keyed by `slots`.
    Group {
        map: &'a RefCell<FastMap<Tuple, f64>>,
        slots: &'a [Slot],
    },
    /// Remaining product factors, then the rest.
    Seq(&'a [Op], &'a Tail<'a>),
}

struct Exec<'a> {
    src: &'a dyn RelationSource,
    frame: &'a mut [Value],
    patterns: &'a mut [Vec<Option<Value>>],
    scratch: &'a mut [FastMap<Tuple, f64>],
    accs: &'a [Cell<f64>],
    bands: &'a mut FastMap<(u16, Tuple), BandCache>,
    run_entries: u32,
    counters: &'a KernelCounters,
    out: &'a mut Vec<(Tuple, f64)>,
    /// Rows below this index belong to earlier batch entries: the sink's
    /// consecutive-same-key collapse must never merge across them (each
    /// entry's rows are applied a different number of times).
    merge_floor: usize,
    key_slots: &'a [Slot],
    error: Option<EvalError>,
}

impl Exec<'_> {
    #[inline]
    fn fail(&mut self, e: EvalError) {
        if self.error.is_none() {
            self.error = Some(e);
        }
    }

    /// Stream the entries of a partially bound atom: fill the pattern buffer
    /// from the frame, re-check bound positions (sources may over-approximate),
    /// enforce repeated-variable equalities, bind the free-position slots, and
    /// hand each surviving `(entry-multiplicity)` to `on_match`. Shared by
    /// [`Op::Scan`] and the fused prelude so the prologue cannot drift.
    fn scan_atom(
        &mut self,
        rel: &str,
        buf: u16,
        template: &[Option<Slot>],
        eqs: &[(u16, u16)],
        binds: &[(u16, Slot)],
        on_match: &mut dyn FnMut(&mut Self, f64),
    ) {
        bump(&self.counters.scans);
        let mut pattern = std::mem::take(&mut self.patterns[buf as usize]);
        for (p, t) in pattern.iter_mut().zip(template.iter()) {
            *p = t.map(|slot| self.frame[slot as usize].clone());
        }
        let arity = template.len();
        let src = self.src;
        let result = src.for_each_matching(rel, &pattern, &mut |t, m| {
            bump(&self.counters.entries_scanned);
            if self.error.is_some() || m == 0.0 {
                return;
            }
            if t.len() != arity {
                self.fail(EvalError::ArityMismatch {
                    relation: rel.to_string(),
                    expected: arity,
                    actual: t.len(),
                });
                return;
            }
            if !matches_pattern(t, &pattern) {
                return;
            }
            for &(i, j) in eqs {
                if t[i as usize] != t[j as usize] {
                    return;
                }
            }
            for &(pos, slot) in binds {
                self.frame[slot as usize] = t[pos as usize].clone();
            }
            on_match(self, m);
        });
        self.patterns[buf as usize] = pattern;
        if let Err(e) = result {
            self.fail(e);
        }
    }

    /// Deliver an emission to the continuation.
    fn finish(&mut self, mult: f64, tail: &Tail) {
        match tail {
            Tail::Rows => {
                // Consecutive emissions for the same key (the common case for
                // loop-free statements, whose key comes entirely from trigger
                // slots) collapse into one row, so applying the buffer costs
                // one map write per key run instead of one per emission —
                // never across an entry boundary (`merge_floor`).
                if self.out.len() > self.merge_floor {
                    if let Some(last) = self.out.last_mut() {
                        if last.0.len() == self.key_slots.len()
                            && self
                                .key_slots
                                .iter()
                                .enumerate()
                                .all(|(i, &s)| last.0[i] == self.frame[s as usize])
                        {
                            last.1 += mult;
                            return;
                        }
                    }
                }
                let key: Tuple = self
                    .key_slots
                    .iter()
                    .map(|&s| self.frame[s as usize].clone())
                    .collect();
                self.out.push((key, mult));
            }
            Tail::Acc(acc) => acc.set(acc.get() + mult),
            Tail::Group { map, slots } => {
                let key: Tuple = slots
                    .iter()
                    .map(|&s| self.frame[s as usize].clone())
                    .collect();
                // GMR semantics treat exact-zero totals as absent; zero
                // entries are left in place and skipped by the Exists replay.
                *map.borrow_mut().entry(key).or_insert(0.0) += mult;
            }
            Tail::Seq(ops, rest) => match ops.split_first() {
                Some((first, remaining)) => {
                    self.exec(first, mult, &Tail::Seq(remaining, rest));
                }
                None => self.finish(mult, rest),
            },
        }
    }

    /// Execute one op with an incoming multiplicity.
    fn exec(&mut self, op: &Op, mult: f64, tail: &Tail) {
        if self.error.is_some() || mult == 0.0 {
            // Zero short-circuits exactly like the interpreter's empty
            // accumulator: downstream factors are never evaluated.
            return;
        }
        match op {
            Op::ConstMult(c) => self.finish(mult * c, tail),
            Op::SlotMult(slot) => match self.frame[*slot as usize].as_f64() {
                Ok(v) => self.finish(mult * v, tail),
                Err(e) => self.fail(EvalError::Value(e.to_string())),
            },
            Op::ScalarMult(s) => match self.eval_scalar(s) {
                Ok(v) => match v.as_f64() {
                    Ok(f) => self.finish(mult * f, tail),
                    Err(e) => self.fail(EvalError::Value(e.to_string())),
                },
                Err(e) => self.fail(e),
            },
            Op::Probe { rel, buf, template } => {
                bump(&self.counters.probes);
                let mut pattern = std::mem::take(&mut self.patterns[*buf as usize]);
                for (p, &slot) in pattern.iter_mut().zip(template.iter()) {
                    *p = Some(self.frame[slot as usize].clone());
                }
                let arity = template.len();
                let src = self.src;
                let result = src.for_each_matching(rel, &pattern, &mut |t, m| {
                    if self.error.is_some() || m == 0.0 {
                        return;
                    }
                    if t.len() != arity {
                        self.fail(EvalError::ArityMismatch {
                            relation: rel.clone(),
                            expected: arity,
                            actual: t.len(),
                        });
                        return;
                    }
                    // Sources may over-approximate; re-check like the
                    // interpreter does.
                    if !matches_pattern(t, &pattern) {
                        return;
                    }
                    self.finish(mult * m, tail);
                });
                self.patterns[*buf as usize] = pattern;
                if let Err(e) = result {
                    self.fail(e);
                }
            }
            Op::Scan {
                rel,
                buf,
                template,
                binds,
                eqs,
            } => {
                self.scan_atom(rel, *buf, template, eqs, binds, &mut |me, m| {
                    me.finish(mult * m, tail)
                });
            }
            Op::Product(ops) => self.finish(mult, &Tail::Seq(ops, tail)),
            Op::Sum(terms) => {
                for t in terms {
                    self.exec(t, mult, tail);
                }
            }
            Op::Neg(inner) => self.exec(inner, -mult, tail),
            Op::AggSum(inner) => self.exec(inner, mult, tail),
            Op::LiftBind { slot, value } => match self.eval_scalar(value) {
                Ok(v) => {
                    self.frame[*slot as usize] = v;
                    self.finish(mult, tail);
                }
                Err(e) => self.fail(e),
            },
            Op::LiftEq { slot, value } => match self.eval_scalar(value) {
                Ok(v) => {
                    if self.frame[*slot as usize] == v {
                        self.finish(mult, tail);
                    }
                }
                Err(e) => self.fail(e),
            },
            Op::CmpFilter { cmp, left, right } => {
                let l = match self.eval_scalar(left) {
                    Ok(v) => v,
                    Err(e) => return self.fail(e),
                };
                let r = match self.eval_scalar(right) {
                    Ok(v) => v,
                    Err(e) => return self.fail(e),
                };
                if cmp.eval(&l, &r) {
                    self.finish(mult, tail);
                }
            }
            Op::Exists {
                inner,
                slots,
                scratch,
            } => {
                let idx = *scratch as usize;
                let mut map = std::mem::take(&mut self.scratch[idx]);
                map.clear();
                let map = {
                    let cell = RefCell::new(map);
                    self.exec(inner, 1.0, &Tail::Group { map: &cell, slots });
                    cell.into_inner()
                };
                if self.error.is_none() {
                    for (key, &m) in map.iter() {
                        if m == 0.0 {
                            continue; // cancelled group (GMR removes exact zeros)
                        }
                        for (i, &slot) in slots.iter().enumerate() {
                            self.frame[slot as usize] = key[i].clone();
                        }
                        self.finish(mult, tail);
                    }
                }
                self.scratch[idx] = map;
            }
        }
    }

    /// Run one fused prelude scan: a single bucket traversal feeding every
    /// member's filter chain into its own accumulator, then write the totals
    /// into the members' result slots. Over a long enough delta run, a fully
    /// banded scan (see [`BandSpec`]) is answered from a sorted cache
    /// instead.
    fn run_prelude(&mut self, idx: u16, fs: &FusedScan) {
        if self.error.is_some() {
            return;
        }
        if self.run_entries >= BAND_MIN_RUN_ENTRIES {
            if let Some(pos) = fs.band_pos {
                if self.run_banded(idx, fs, pos) || self.error.is_some() {
                    bump(&self.counters.banded_hits);
                    return;
                }
                bump(&self.counters.banded_bails);
            }
        }
        bump(&self.counters.fused_scans);
        let accs = self.accs;
        for c in &accs[..fs.members.len()] {
            c.set(0.0);
        }
        self.scan_atom(
            &fs.rel,
            fs.buf,
            &fs.template,
            &fs.eqs,
            &fs.binds,
            &mut |me, m| {
                for (k, member) in fs.members.iter().enumerate() {
                    if let Some(fast) = &member.fast {
                        match run_fast(fast, me.frame, m) {
                            FastOutcome::Contribute(c) => {
                                accs[k].set(accs[k].get() + c);
                                continue;
                            }
                            FastOutcome::Skip => continue,
                            FastOutcome::Bail => {} // exact general path below
                        }
                    }
                    let acc_tail = Tail::Acc(&accs[k]);
                    me.finish(m, &Tail::Seq(&member.cont, &acc_tail));
                }
            },
        );
        if self.error.is_none() {
            for (k, member) in fs.members.iter().enumerate() {
                self.frame[member.dest as usize] = Value::double(accs[k].get());
            }
        }
    }

    /// Answer every member of a banded prelude scan from sorted prefix sums.
    /// Returns `false` — caller falls back to the full traversal, which is
    /// the bit-exactness baseline — whenever any exactness guard trips: a
    /// bound-expression leaf, scanned key or multiplicity that is not a
    /// finite integer-valued number (keys and leaves must also be nonzero,
    /// which rules the `-0.0`/`+0.0` `total_cmp` corner cases out of both
    /// evaluation orders), or a magnitude sum reaching 2^53. Within the
    /// guards every addition either path performs is exact, so the banded
    /// interval sums equal the traversal's accumulators bit for bit.
    fn run_banded(&mut self, idx: u16, fs: &FusedScan, pos: u16) -> bool {
        // Evaluate every member's bounds first (they read only trigger
        // slots); any failure bails before any state is touched.
        const MAX_RANGES: usize = 16;
        let mut bounds = [(CmpOp::Lt, 0.0f64); MAX_RANGES];
        let mut mags = [0.0f64; MAX_RANGES];
        let mut n = 0usize;
        for m in &fs.members {
            let Some(band) = &m.band else {
                return false;
            };
            for (cmp, be) in &band.ranges {
                if n == MAX_RANGES || matches!(cmp, CmpOp::Eq | CmpOp::Ne) {
                    return false;
                }
                let Some((b, mag)) = eval_bound(be, self.frame) else {
                    return false;
                };
                // `-0.0` bounds (an all-negated-zero-terms fold) would order
                // differently under `total_cmp` than the original compare.
                if b == 0.0 && b.is_sign_negative() {
                    return false;
                }
                bounds[n] = (*cmp, b);
                mags[n] = mag;
                n += 1;
            }
        }
        let probe: Tuple = fs
            .template
            .iter()
            .flatten()
            .map(|&s| self.frame[s as usize].clone())
            .collect();
        let probe = (idx, probe);
        if !self.bands.contains_key(&probe) {
            let cache = self.build_band_cache(fs, pos);
            if self.error.is_some() {
                // The traversal error stands; `execute` will surface it.
                return true;
            }
            self.bands.insert(probe.clone(), cache);
        }
        let cache = &self.bands[&probe];
        if !cache.ok {
            return false;
        }
        // Σ|leaf| + |key| < 2^53 bounds every intermediate of both the
        // original and the rearranged comparison, making them identical.
        if mags[..n]
            .iter()
            .any(|&mag| mag + cache.max_abs_key >= EXACT_INT_BOUND)
        {
            return false;
        }
        let len = cache.keys.len();
        let mut r = 0usize;
        for m in &fs.members {
            let band = m.band.as_ref().expect("checked above");
            let (mut lo, mut hi) = (0usize, len);
            for _ in &band.ranges {
                let (cmp, b) = bounds[r];
                r += 1;
                // `partition_point` closures mirror `num_cmp`'s `total_cmp`
                // ordering exactly.
                use std::cmp::Ordering::{Greater, Less};
                match cmp {
                    CmpOp::Lt => {
                        hi = hi.min(cache.keys.partition_point(|k| k.total_cmp(&b) == Less))
                    }
                    CmpOp::Le => {
                        hi = hi.min(cache.keys.partition_point(|k| k.total_cmp(&b) != Greater))
                    }
                    CmpOp::Gt => {
                        lo = lo.max(cache.keys.partition_point(|k| k.total_cmp(&b) != Greater))
                    }
                    CmpOp::Ge => {
                        lo = lo.max(cache.keys.partition_point(|k| k.total_cmp(&b) == Less))
                    }
                    CmpOp::Eq | CmpOp::Ne => {} // rejected above
                }
            }
            let total = if hi > lo {
                cache.prefix[hi] - cache.prefix[lo]
            } else {
                0.0
            };
            self.frame[m.dest as usize] = Value::double(total);
        }
        true
    }

    /// Build one banded cache line: traverse the scan once (respecting the
    /// template and equality checks exactly as the per-entry path does),
    /// collect `(band key, multiplicity)` pairs, sort by key and integrate.
    /// Any guard violation yields a `!ok` negative line.
    fn build_band_cache(&mut self, fs: &FusedScan, pos: u16) -> BandCache {
        let Some(&(_, slot)) = fs.binds.iter().find(|(p, _)| *p == pos) else {
            return BandCache::default();
        };
        let binds = [(pos, slot)];
        let mut pairs: Vec<(f64, f64)> = Vec::new();
        let mut ok = true;
        let mut max_abs = 0.0f64;
        self.scan_atom(
            &fs.rel,
            fs.buf,
            &fs.template,
            &fs.eqs,
            &binds,
            &mut |me, m| {
                if !ok {
                    return;
                }
                let k = match &me.frame[slot as usize] {
                    Value::Long(v) if v.unsigned_abs() <= (1u64 << 53) => *v as f64,
                    Value::Double(d) => *d,
                    _ => {
                        ok = false;
                        return;
                    }
                };
                if !(k.is_finite() && k.fract() == 0.0 && k != 0.0 && k.abs() <= EXACT_INT_BOUND)
                    || !(m.is_finite() && m.fract() == 0.0 && m.abs() <= EXACT_INT_BOUND)
                {
                    ok = false;
                    return;
                }
                max_abs = max_abs.max(k.abs());
                pairs.push((k, m));
            },
        );
        if self.error.is_some() {
            return BandCache::default();
        }
        if ok {
            pairs.sort_unstable_by(|a, b| a.0.total_cmp(&b.0));
            let mut keys = Vec::with_capacity(pairs.len());
            let mut prefix = Vec::with_capacity(pairs.len() + 1);
            let (mut acc, mut cum_abs) = (0.0f64, 0.0f64);
            prefix.push(0.0);
            for (k, m) in pairs {
                // Bounding Σ|m| (not just each running prefix) keeps every
                // partial sum of *any* contiguous range exact.
                cum_abs += m.abs();
                if cum_abs >= EXACT_INT_BOUND {
                    ok = false;
                    break;
                }
                acc += m;
                keys.push(k);
                prefix.push(acc);
            }
            if ok {
                return BandCache {
                    ok: true,
                    keys,
                    prefix,
                    max_abs_key: max_abs,
                };
            }
        }
        BandCache::default()
    }

    fn eval_scalar(&mut self, s: &Scalar) -> Result<Value, EvalError> {
        match s {
            Scalar::Const(v) => Ok(v.clone()),
            Scalar::Slot(slot) => Ok(self.frame[*slot as usize].clone()),
            Scalar::Neg(inner) => Ok(self
                .eval_scalar(inner)?
                .neg()
                .map_err(|e| EvalError::Value(e.to_string()))?),
            Scalar::Add(terms) => terms.iter().try_fold(Value::long(0), |acc, t| {
                let v = self.eval_scalar(t)?;
                acc.add(&v).map_err(|e| EvalError::Value(e.to_string()))
            }),
            Scalar::Mul(factors) => factors.iter().try_fold(Value::long(1), |acc, t| {
                let v = self.eval_scalar(t)?;
                acc.mul(&v).map_err(|e| EvalError::Value(e.to_string()))
            }),
            Scalar::Apply(f, args) => {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| self.eval_scalar(a))
                    .collect::<Result<_, _>>()?;
                crate::eval::apply_scalar_fn(f, &vals)
            }
            Scalar::Cmp(op, l, r) => {
                let lv = self.eval_scalar(l)?;
                let rv = self.eval_scalar(r)?;
                Ok(Value::double(if op.eval(&lv, &rv) { 1.0 } else { 0.0 }))
            }
            Scalar::SubSum(op) => {
                let acc = Cell::new(0.0);
                self.exec(op, 1.0, &Tail::Acc(&acc));
                if let Some(e) = &self.error {
                    return Err(e.clone());
                }
                Ok(Value::double(acc.get()))
            }
        }
    }
}

impl CompiledStmt {
    /// Execute the kernel against a relation source, buffering `(key,
    /// multiplicity)` rows into `state.out`. The caller must have called
    /// [`KernelState::prepare`] and seeded `state.frame[0..trigger_slots]`
    /// from the event tuple.
    pub fn execute(
        &self,
        src: &dyn RelationSource,
        state: &mut KernelState,
    ) -> Result<(), EvalError> {
        self.execute_batch_entry(src, state, true)
    }

    /// [`CompiledStmt::execute`] for one entry of a delta batch: when
    /// `run_invariant_preludes` is `false`, prelude scans marked
    /// [`FusedScan::entry_invariant`] are skipped — their result slots still
    /// hold the totals computed for the batch's first entry, which are valid
    /// for every entry because such scans read no trigger slot and (by the
    /// statement-major safety analysis) nothing the batch writes. Rows are
    /// **appended** to `state.out`; the batch executor tracks entry
    /// boundaries itself.
    pub fn execute_batch_entry(
        &self,
        src: &dyn RelationSource,
        state: &mut KernelState,
        run_invariant_preludes: bool,
    ) -> Result<(), EvalError> {
        debug_assert!(state.frame.len() >= self.frame_size as usize);
        let merge_floor = state.out.len();
        if state.counter_slots.is_empty() {
            state.counter_slots.push(KernelCounters::default());
        }
        let counter_slot = state.counter_slot.min(state.counter_slots.len() - 1);
        let mut exec = Exec {
            src,
            frame: &mut state.frame,
            patterns: &mut state.patterns,
            scratch: &mut state.scratch,
            accs: &state.fused_accs,
            bands: &mut state.bands,
            run_entries: state.run_entries,
            counters: &state.counter_slots[counter_slot],
            out: &mut state.out,
            merge_floor,
            key_slots: &self.key_slots,
            error: None,
        };
        for (i, fs) in self.prelude.iter().enumerate() {
            if run_invariant_preludes || !fs.entry_invariant {
                exec.run_prelude(i as u16, fs);
            }
        }
        exec.exec(&self.plan, 1.0, &Tail::Rows);
        match exec.error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::{eval, Bindings, MemSource};
    use crate::expr::CmpOp as OpC;
    use dbtoaster_gmr::{Gmr, Schema};

    fn db() -> MemSource {
        let mut src = MemSource::new();
        let mut r = Gmr::new(Schema::new(["A", "B"]));
        r.add_tuple(vec![Value::long(1), Value::long(2)], 1.0);
        r.add_tuple(vec![Value::long(3), Value::long(5)], 2.0);
        r.add_tuple(vec![Value::long(4), Value::long(2)], 1.0);
        src.set_relation("R", r);
        let mut s = Gmr::new(Schema::new(["B", "C"]));
        s.add_tuple(vec![Value::long(2), Value::long(10)], 1.0);
        s.add_tuple(vec![Value::long(5), Value::long(20)], 3.0);
        src.set_relation("S", s);
        src
    }

    /// Compile `rhs` as a loop statement over `key_vars`, run it, and compare
    /// against the interpreter's GMR keyed the same way.
    fn check(rhs: &Expr, trigger: &[(&str, i64)], key_vars: &[&str]) {
        let tvars: Vec<String> = trigger.iter().map(|(n, _)| n.to_string()).collect();
        let kvars: Vec<String> = key_vars.iter().map(|k| k.to_string()).collect();
        let stmt =
            lower_statement(&tvars, &kvars, rhs).unwrap_or_else(|| panic!("failed to lower {rhs}"));
        let src = db();
        let mut state = KernelState::new();
        state.prepare(&stmt);
        for (i, (_, v)) in trigger.iter().enumerate() {
            state.frame[i] = Value::long(*v);
        }
        stmt.execute(&src, &mut state).unwrap();
        let mut compiled = Gmr::new(Schema::new(key_vars.iter().copied()));
        for (k, m) in state.out.drain(..) {
            compiled.add_tuple(k, m);
        }

        let mut ctx = Bindings::new();
        for (n, v) in trigger {
            ctx.insert(n.to_string(), Value::long(*v));
        }
        let reference = eval(rhs, &src, &ctx).unwrap();
        let mut expected = Gmr::new(Schema::new(key_vars.iter().copied()));
        for (t, m) in reference.iter() {
            let key: Tuple = key_vars
                .iter()
                .map(|kv| match ctx.get(kv) {
                    Some(v) => v.clone(),
                    None => {
                        let i = reference.schema().index_of(kv).expect("key var in result");
                        t[i].clone()
                    }
                })
                .collect();
            expected.add_tuple(key, m);
        }
        assert!(
            compiled.equivalent(&expected, 0.0),
            "compiled ≠ interpreted for {rhs}\ncompiled:\n{compiled}\nexpected:\n{expected}"
        );
    }

    #[test]
    fn scan_and_probe_match_interpreter() {
        // Free scan grouped by b.
        check(
            &Expr::agg_sum(["b"], Expr::rel("R", ["a", "b"])),
            &[],
            &["b"],
        );
        // Fully bound probe via trigger variables.
        check(&Expr::rel("R", ["x", "y"]), &[("x", 3), ("y", 5)], &[]);
        // Partially bound scan.
        check(&Expr::rel("R", ["x", "b"]), &[("x", 4)], &["b"]);
    }

    #[test]
    fn join_with_weights_matches_interpreter() {
        let e = Expr::agg_sum(
            Vec::<String>::new(),
            Expr::product_of([
                Expr::rel("R", ["a", "b"]),
                Expr::rel("S", ["b", "c"]),
                Expr::var("c"),
            ]),
        );
        check(&e, &[], &[]);
    }

    #[test]
    fn hoisted_lift_becomes_probe() {
        // The delta-statement pattern: atom before its binding lift.
        let e = Expr::product_of([Expr::rel("R", ["a", "b"]), Expr::lift("a", Expr::var("t"))]);
        let stmt = lower_statement(&["t".into()], &["b".into()], &e).unwrap();
        // The lift must have been hoisted ahead of the atom, making position
        // `a` a bound hole of the scan template.
        let ops = match &stmt.plan {
            Op::Product(ops) => ops,
            other => panic!("expected product, got {other:?}"),
        };
        assert!(
            matches!(ops[0], Op::LiftBind { .. }),
            "lift not hoisted: {ops:?}"
        );
        check(&e, &[("t", 3)], &["b"]);
    }

    #[test]
    fn comparisons_lifts_and_sums() {
        let e = Expr::agg_sum(
            ["b"],
            Expr::product_of([
                Expr::rel("R", ["a", "b"]),
                Expr::cmp(OpC::Lt, Expr::var("a"), Expr::var("b")),
                Expr::var("a"),
            ]),
        );
        check(&e, &[], &["b"]);
        let sum = Expr::sum_of([
            Expr::rel("R", ["a", "b"]),
            Expr::neg(Expr::rel("R", ["a", "b"])),
        ]);
        check(&sum, &[], &["a", "b"]);
    }

    #[test]
    fn nested_aggregate_in_scalar_position() {
        // z := Sum[]( S(c,d) * d ), then filter on it — the PSP shape.
        let nested = Expr::agg_sum(
            Vec::<String>::new(),
            Expr::product_of([Expr::rel("S", ["c", "d"]), Expr::var("d")]),
        );
        let e = Expr::agg_sum(
            Vec::<String>::new(),
            Expr::product_of([
                Expr::rel("R", ["a", "b"]),
                Expr::lift("z", nested),
                Expr::cmp(OpC::Lt, Expr::var("b"), Expr::var("z")),
            ]),
        );
        check(&e, &[], &[]);
    }

    #[test]
    fn exists_clamps_multiplicities() {
        let e = Expr::agg_sum(["b"], Expr::exists(Expr::rel("R", ["a", "b"])));
        check(&e, &[], &["b"]);
        // Exists over a fully bound probe (scalar existence).
        let e2 = Expr::product_of([
            Expr::rel("R", ["a", "b"]),
            Expr::exists(Expr::rel("S", ["b", "c2"])),
        ]);
        check(&e2, &[], &["a", "b", "c2"]);
    }

    #[test]
    fn repeated_variables_enforce_equality() {
        let mut src = db();
        let mut t = Gmr::new(Schema::new(["X", "Y"]));
        t.add_tuple(vec![Value::long(1), Value::long(1)], 1.0);
        t.add_tuple(vec![Value::long(1), Value::long(2)], 1.0);
        src.set_relation("T", t);
        let e = Expr::rel("T", ["x", "x"]);
        let stmt = lower_statement(&[], &["x".into()], &e).unwrap();
        let mut state = KernelState::new();
        state.prepare(&stmt);
        stmt.execute(&src, &mut state).unwrap();
        assert_eq!(state.out.len(), 1);
        assert_eq!(state.out[0].0.as_slice(), &[Value::long(1)]);
    }

    #[test]
    fn unsupported_shapes_fall_back() {
        // Unbound variable in multiplicity position.
        assert!(lower_statement(&[], &[], &Expr::var("nope")).is_none());
        // Key variable not bound anywhere.
        assert!(lower_statement(&[], &["k".into()], &Expr::one()).is_none());
        // String constant in multiplicity position.
        assert!(lower_statement(&[], &[], &Expr::Const(Value::str("x"))).is_none());
    }

    #[test]
    fn unknown_relation_errors_at_runtime() {
        let stmt = lower_statement(&[], &["x".into()], &Expr::rel("Nope", ["x"])).unwrap();
        let mut state = KernelState::new();
        state.prepare(&stmt);
        let err = stmt.execute(&db(), &mut state).unwrap_err();
        assert!(matches!(err, EvalError::UnknownRelation(_)));
    }
}
