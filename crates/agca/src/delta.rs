//! The delta transform (Section 3.4 of the paper).
//!
//! AGCA is closed under taking deltas: for every expression `Q` and update `u` there is
//! an expression `Δ_u Q` such that `Q(D + ΔD) = Q(D) + Δ_u Q(D, ΔD)`. Because GMRs with
//! `+` and `*` form a ring, the delta is computed by purely syntactic rules — the
//! product rule is a direct consequence of distributivity.
//!
//! This module implements the single-tuple form `Δ_{±R(~t)}` used by the compiler: the
//! inserted/deleted tuple is passed through fresh *trigger variables*, and the delta of
//! the updated relation atom becomes a product of lifts `(x_i := t_i)`.

use crate::expr::{AtomKind, Expr};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Insertion or deletion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UpdateSign {
    /// `+R(~t)`
    Insert,
    /// `-R(~t)`
    Delete,
}

impl UpdateSign {
    /// +1.0 for insertions, -1.0 for deletions.
    pub fn multiplier(self) -> f64 {
        match self {
            UpdateSign::Insert => 1.0,
            UpdateSign::Delete => -1.0,
        }
    }

    /// Both signs, in the order the paper enumerates them.
    pub fn both() -> [UpdateSign; 2] {
        [UpdateSign::Insert, UpdateSign::Delete]
    }
}

impl fmt::Display for UpdateSign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateSign::Insert => write!(f, "+"),
            UpdateSign::Delete => write!(f, "-"),
        }
    }
}

/// A single-tuple update event `±R(t_1, ..., t_k)` described symbolically: the tuple
/// components are named by *trigger variables* which are bound at runtime.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TupleUpdate {
    /// The updated relation.
    pub relation: String,
    /// Insertion or deletion.
    pub sign: UpdateSign,
    /// Trigger variable names, one per column of the relation.
    pub trigger_vars: Vec<String>,
}

impl TupleUpdate {
    /// Build an update for `relation` with canonical trigger variable names
    /// `<relation>@<column>` derived from the given column names. The `@` separator
    /// cannot appear in SQL identifiers, so trigger variables can never collide with the
    /// column variables produced by the SQL frontend.
    pub fn new(relation: impl Into<String>, sign: UpdateSign, columns: &[String]) -> TupleUpdate {
        let relation = relation.into();
        let prefix = relation.to_lowercase();
        TupleUpdate {
            trigger_vars: columns
                .iter()
                .map(|c| format!("{}@{}", prefix, c.to_lowercase()))
                .collect(),
            relation,
            sign,
        }
    }
}

impl fmt::Display for TupleUpdate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}({})",
            self.sign,
            self.relation,
            self.trigger_vars.join(", ")
        )
    }
}

/// A concrete single-tuple update event: the runtime counterpart of [`TupleUpdate`],
/// carrying actual values instead of trigger-variable names.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UpdateEvent {
    /// The updated relation.
    pub relation: String,
    /// Insertion or deletion.
    pub sign: UpdateSign,
    /// The inserted / deleted tuple.
    pub tuple: Vec<dbtoaster_gmr::Value>,
}

impl UpdateEvent {
    /// An insertion event.
    pub fn insert(relation: impl Into<String>, tuple: Vec<dbtoaster_gmr::Value>) -> Self {
        UpdateEvent {
            relation: relation.into(),
            sign: UpdateSign::Insert,
            tuple,
        }
    }

    /// A deletion event.
    pub fn delete(relation: impl Into<String>, tuple: Vec<dbtoaster_gmr::Value>) -> Self {
        UpdateEvent {
            relation: relation.into(),
            sign: UpdateSign::Delete,
            tuple,
        }
    }
}

/// Compute the single-tuple delta `Δ_{±R(~t)} Q`.
///
/// The result references the trigger variables of `update` as *input variables*; it is
/// not simplified — callers typically pass it through [`crate::opt::simplify`].
pub fn delta(expr: &Expr, update: &TupleUpdate) -> Expr {
    match expr {
        Expr::Const(_) | Expr::Var(_) | Expr::Cmp(..) | Expr::Apply(..) => Expr::zero(),
        Expr::Rel(r) => {
            if r.kind == AtomKind::Stream && r.name == update.relation {
                debug_assert_eq!(
                    r.args.len(),
                    update.trigger_vars.len(),
                    "update arity mismatch for {}",
                    r.name
                );
                let lifts = r
                    .args
                    .iter()
                    .zip(update.trigger_vars.iter())
                    .map(|(col, tv)| Expr::lift(col.clone(), Expr::var(tv.clone())));
                let body = Expr::product_of(lifts);
                match update.sign {
                    UpdateSign::Insert => body,
                    UpdateSign::Delete => Expr::neg(body),
                }
            } else {
                // Static tables, views and other stream relations do not change.
                Expr::zero()
            }
        }
        Expr::Add(terms) => Expr::sum_of(terms.iter().map(|t| delta(t, update))),
        Expr::Mul(factors) => delta_product(factors, update),
        Expr::Neg(e) => Expr::neg(delta(e, update)),
        Expr::AggSum(gb, e) => {
            let d = delta(e, update);
            if d.is_zero() {
                Expr::zero()
            } else {
                Expr::AggSum(gb.clone(), Box::new(d))
            }
        }
        Expr::Lift(x, e) => {
            let d = delta(e, update);
            if d.is_zero() {
                Expr::zero()
            } else {
                // Δ(x := Q) = (x := Q + ΔQ) - (x := Q).
                Expr::sum_of([
                    Expr::lift(x.clone(), Expr::sum_of([(**e).clone(), d])),
                    Expr::neg(Expr::lift(x.clone(), (**e).clone())),
                ])
            }
        }
        Expr::Exists(e) => {
            let d = delta(e, update);
            if d.is_zero() {
                Expr::zero()
            } else {
                // Δ Exists(Q) = Exists(Q + ΔQ) - Exists(Q), analogous to the lift rule.
                Expr::sum_of([
                    Expr::exists(Expr::sum_of([(**e).clone(), d])),
                    Expr::neg(Expr::exists((**e).clone())),
                ])
            }
        }
    }
}

/// Product rule, folded pairwise:
/// `Δ(Q1 * Q2) = ΔQ1 * Q2 + Q1 * ΔQ2 + ΔQ1 * ΔQ2`.
fn delta_product(factors: &[Expr], update: &TupleUpdate) -> Expr {
    match factors.len() {
        0 => Expr::zero(),
        1 => delta(&factors[0], update),
        _ => {
            let head = &factors[0];
            let tail = Expr::product_of(factors[1..].iter().cloned());
            let d_head = delta(head, update);
            let d_tail = delta(&tail, update);
            let mut terms = Vec::new();
            if !d_head.is_zero() {
                terms.push(Expr::product_of([d_head.clone(), tail.clone()]));
            }
            if !d_tail.is_zero() {
                terms.push(Expr::product_of([head.clone(), d_tail.clone()]));
            }
            if !d_head.is_zero() && !d_tail.is_zero() {
                terms.push(Expr::product_of([d_head, d_tail]));
            }
            Expr::sum_of(terms)
        }
    }
}

/// Apply `delta` repeatedly for a sequence of updates (a k-th order delta).
pub fn higher_order_delta(expr: &Expr, updates: &[TupleUpdate]) -> Expr {
    updates.iter().fold(expr.clone(), |e, u| delta(&e, u))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp as Op;

    fn count_rs() -> Expr {
        // Q = Sum[]( R(a) * S(b) )  — Example 1's count of the product.
        Expr::agg_sum(
            Vec::<String>::new(),
            Expr::product_of([Expr::rel("R", ["a"]), Expr::rel("S", ["b"])]),
        )
    }

    fn upd(rel: &str, cols: &[&str], sign: UpdateSign) -> TupleUpdate {
        TupleUpdate::new(
            rel,
            sign,
            &cols.iter().map(|c| c.to_string()).collect::<Vec<_>>(),
        )
    }

    #[test]
    fn delta_of_other_relation_is_zero() {
        let q = Expr::rel("R", ["a", "b"]);
        let d = delta(&q, &upd("S", &["c"], UpdateSign::Insert));
        assert!(d.is_zero());
    }

    #[test]
    fn delta_of_static_table_is_zero() {
        let q = Expr::table("Nation", ["n"]);
        let d = delta(&q, &upd("Nation", &["n"], UpdateSign::Insert));
        assert!(d.is_zero());
    }

    #[test]
    fn delta_of_matching_atom_is_lift_product() {
        let q = Expr::rel("R", ["a", "b"]);
        let d = delta(&q, &upd("R", &["a", "b"], UpdateSign::Insert));
        assert_eq!(
            d,
            Expr::product_of([
                Expr::lift("a", Expr::var("r@a")),
                Expr::lift("b", Expr::var("r@b")),
            ])
        );
        let dd = delta(&q, &upd("R", &["a", "b"], UpdateSign::Delete));
        assert!(matches!(dd, Expr::Neg(_)));
    }

    #[test]
    fn degree_decreases_with_each_delta() {
        // Theorem 1: deg(ΔQ) = deg(Q) - 1 for positive-degree queries without nesting.
        let q = count_rs();
        assert_eq!(q.degree(), 2);
        let d1 = delta(&q, &upd("R", &["a"], UpdateSign::Insert));
        assert_eq!(d1.degree(), 1);
        let d2 = delta(&d1, &upd("S", &["b"], UpdateSign::Insert));
        assert_eq!(d2.degree(), 0);
        // The third-order delta is identically zero.
        let d3 = delta(&d2, &upd("R", &["a"], UpdateSign::Insert));
        assert!(d3.is_zero());
    }

    #[test]
    fn second_order_delta_commutes() {
        let q = count_rs();
        let dr = upd("R", &["a"], UpdateSign::Insert);
        let ds = upd("S", &["b"], UpdateSign::Insert);
        let drs = higher_order_delta(&q, &[dr.clone(), ds.clone()]);
        let dsr = higher_order_delta(&q, &[ds, dr]);
        // Both are structurally a Sum[] over the two trigger lifts; their degree is 0.
        assert_eq!(drs.degree(), 0);
        assert_eq!(dsr.degree(), 0);
        assert!(!drs.is_zero());
        assert!(!dsr.is_zero());
    }

    #[test]
    fn self_join_delta_has_three_terms() {
        // Δ(R(a) * R(a)) = ΔR*R + R*ΔR + ΔR*ΔR (Example 12's non-linearity).
        let q = Expr::product_of([Expr::rel("R", ["a"]), Expr::rel("R", ["a"])]);
        let d = delta(&q, &upd("R", &["a"], UpdateSign::Insert));
        match d {
            Expr::Add(ts) => assert_eq!(ts.len(), 3),
            other => panic!("expected 3-term sum, got {other}"),
        }
    }

    #[test]
    fn nested_aggregate_delta_references_original() {
        // Δ(z := Qn) = (z := Qn + ΔQn) - (z := Qn): the original nested query appears
        // twice, which is why Theorem 1 does not apply to nested aggregates.
        let qn = Expr::agg_sum(
            Vec::<String>::new(),
            Expr::product_of([
                Expr::rel("S", ["c", "d"]),
                Expr::cmp(Op::Gt, Expr::var("a"), Expr::var("c")),
                Expr::var("d"),
            ]),
        );
        let q = Expr::lift("z", qn);
        let d = delta(&q, &upd("S", &["c", "d"], UpdateSign::Insert));
        match &d {
            Expr::Add(ts) => {
                assert_eq!(ts.len(), 2);
                assert!(ts[0].references_relation("S"));
            }
            other => panic!("expected sum, got {other}"),
        }
        // Delta w.r.t. an unrelated relation is zero.
        assert!(delta(&q, &upd("T", &["x"], UpdateSign::Insert)).is_zero());
    }

    #[test]
    fn comparison_and_constants_have_zero_delta() {
        let e = Expr::cmp(Op::Lt, Expr::var("a"), Expr::val(10));
        assert!(delta(&e, &upd("R", &["a"], UpdateSign::Insert)).is_zero());
        assert!(delta(&Expr::val(42), &upd("R", &["a"], UpdateSign::Insert)).is_zero());
        assert!(delta(&Expr::var("x"), &upd("R", &["a"], UpdateSign::Insert)).is_zero());
    }

    #[test]
    fn trigger_variable_naming() {
        let u = TupleUpdate::new(
            "Lineitem",
            UpdateSign::Insert,
            &["ORDK".into(), "PRICE".into()],
        );
        assert_eq!(u.trigger_vars, vec!["lineitem@ordk", "lineitem@price"]);
        assert_eq!(format!("{u}"), "+Lineitem(lineitem@ordk, lineitem@price)");
    }
}
