//! Multi-tuple delta batches: the native unit of the processing spine.
//!
//! The paper's trigger programs consume *single-tuple* updates, but every layer
//! around the engine already thinks in batches: the serving writer drains
//! coalesced micro-batches, the write-ahead log frames one record per batch,
//! and compiled kernels amortize per-statement setup. A [`DeltaBatch`] closes
//! the gap: it represents a contiguous slice of the update stream as a sequence
//! of **per-relation GMR deltas** — for each maximal run of same-relation
//! events, one signed multiplicity map (insert = `+1`, delete = `−1`, same-key
//! events collapsed by ring addition). A single event is the degenerate batch
//! of one run with one entry.
//!
//! ## Why a batch of updates *is* a GMR delta
//!
//! GMRs form a ring, and a relation update is just the addition of a delta
//! GMR: inserting tuple `t` is `R ← R + {t → 1}`, deleting it is
//! `R ← R + {t → −1}`. Addition is associative and commutative, so a run of
//! updates to one relation sums to a single delta GMR
//! `ΔR = Σᵢ {tᵢ → ±1}` — keys whose contributions cancel (an insert/delete
//! pair) vanish from the sum entirely, *before any trigger runs*. This is the
//! DBSP view of streams (a batch of changes to a relation is one Z-set), and
//! the representation a future sharded deployment would exchange between
//! nodes.
//!
//! ## What batching is allowed to change — and what it is not
//!
//! Processing a `DeltaBatch` must leave the engine in the same state as
//! processing its events one at a time. Two observations make that cheap:
//!
//! 1. **Each surviving entry is still a correct single-tuple step.** Firing
//!    the (relation, sign) trigger once per unit of a key's net multiplicity
//!    is a sequence of valid incremental steps, so the engine lands on the
//!    same final state as the event-at-a-time path (the views are a function
//!    of the base stream, and the net stream is identical). Cancelled pairs
//!    contribute nothing to the net stream, which is why net-zero keys can be
//!    dropped.
//! 2. **Ring linearity makes statement-major execution exact** when a
//!    trigger's statements never read anything the same run writes (its own
//!    targets, or the updated base relation where stored). Then the delta a
//!    statement computes for entry `tᵢ` is the same whether the other entries
//!    have been applied or not, so the per-statement work can run over all
//!    entries back-to-back — statement prelude and loop-invariant fused scans
//!    amortized across the batch — and the buffered results applied in entry
//!    order. This *read-before-write discipline across the statements of one
//!    relation* is checked statically per trigger
//!    (`TriggerProgram::batch_dispatch` in `dbtoaster-compiler`); triggers
//!    that violate it (e.g. a statement reading a sibling statement's target)
//!    fall back to entry-at-a-time processing inside the batch.
//!
//! ## Second-order batch-delta programs
//!
//! Statement-major execution still fires each statement once *per entry*. The
//! compiler goes one step further and derives, per relation, a **whole-batch
//! trigger program** (`derive_batch_corrections` in `dbtoaster-compiler`): treat
//! the run's net delta `ΔR = Σₑ mₑ{tₑ}` as a single update and expand each
//! maintained map in the GMR ring,
//!
//! ```text
//! M(S + ΔR) = M(S) + Σₑ mₑ · dM(tₑ)              (first order)
//!           + ½ Σₓ Σᵧ mₓ mᵧ · d²M(tₓ, tᵧ)        (pair correction)
//!           − ½ Σₑ |mₑ| · d²M(tₑ, tₑ)            (diagonal; |mₑ| = mₑ²
//!                                                  for unit-step entries)
//! ```
//!
//! The first-order statements are the ordinary trigger statements evaluated
//! against the *pre-batch* state for every entry back-to-back; the correction
//! statements are the second delta fired over entry pairs. Because AGCA
//! deltas of polynomial queries terminate, the expansion is exact — not a
//! truncation — whenever the third delta simplifies to zero: linear queries
//! have empty corrections, and quadratic self-joins close at the pair term.
//!
//! Derivation bails out (and dispatch stays statement-major or entry-major)
//! when the expansion cannot be both exact and pre-state-evaluable: a trigger
//! with non-`Increment` statements (`:=` re-evaluation is not linear), a
//! statement reading a map an earlier statement of the same trigger writes,
//! a nonzero third delta, or a second delta that still mentions a *stream*
//! atom (its mid-run state would be read; static tables are fine). One
//! runtime guard remains: pair corrections are O(entries²), so runs whose
//! correction firing count exceeds a small cap fall back to entry-major.
//! That cap depends only on the run's shape, never on wall-clock, so a WAL
//! replay makes the same choice as the live run. The dispatch actually taken
//! is observable through
//! `EngineStats::{batch_delta_runs, statement_major_runs, entry_major_runs}`
//! and per run via `BatchReport::runs` under `Engine::set_run_recording`.
//!
//! Both arguments are exact in the GMR ring. Over floating-point
//! multiplicities they are exact up to summation order: integer-weighted
//! streams reproduce the per-event state bit for bit, while float aggregates
//! can differ in the last ulp when a batch reorders or cancels contributions
//! (the same caveat as switching between the compiled and interpreted
//! execution paths). Batch processing is *deterministic* either way: the same
//! events partitioned the same way — in particular a live serving run and its
//! WAL replay, which share the batch boundaries — produce identical bits.
//!
//! ## Representation
//!
//! Entries keep their **first-arrival order** (a collapse folds a later event
//! into the existing entry in place), so batch execution visits keys in a
//! deterministic, stream-correlated order, and [`RelationDelta::last_event`]
//! remembers the final event of the run for the statements that must be bound
//! to it (re-evaluation statements fire once per run, as the last event's
//! firing is the one whose output survives). All buffers — the run pool, the
//! per-run entry list and collapse index — are recycled by [`DeltaBatch::clear`],
//! so a steady-state producer (including the engine's own batch-of-1 wrapper
//! around `process`) allocates nothing.

use crate::delta::{UpdateEvent, UpdateSign};
use dbtoaster_gmr::{FastMap, Gmr, Tuple};

/// Name of the pseudo-relation under which second-order batch correction
/// statements read a run's **signed** net multiplicities (`ΔR` as a GMR). The
/// `@` prefix keeps the name disjoint from every SQL-addressable relation; the
/// engine resolves it against the in-flight [`RelationDelta`] instead of the
/// store.
pub fn delta_relation_name(relation: &str) -> String {
    format!("@delta:{relation}")
}

/// Name of the pseudo-relation exposing a run's **absolute** net
/// multiplicities (`|ΔR|`) — the diagonal weighting of the second-order
/// correction, matching the `|mult|` trigger firings the first-order
/// statements perform per entry.
pub fn delta_abs_relation_name(relation: &str) -> String {
    format!("@delta_abs:{relation}")
}

/// One key of a per-relation delta: the net multiplicity of all events in the
/// run that carried this tuple, plus how many events were folded in.
#[derive(Clone, Debug, PartialEq)]
pub struct DeltaEntry {
    /// The updated tuple.
    pub key: Tuple,
    /// Net signed multiplicity (`+1` per insert, `−1` per delete, ring-added).
    /// Exactly `0.0` for a fully cancelled key — such entries stay in place
    /// (preserving arrival order and event accounting) and are skipped by the
    /// engine before any kernel runs.
    pub mult: f64,
    /// Number of stream events folded into this entry.
    pub events: u32,
}

impl DeltaEntry {
    /// How many single-tuple trigger firings this entry stands for
    /// (`|mult|`; 0 for a cancelled key).
    pub fn firings(&self) -> u32 {
        self.mult.abs() as u32
    }

    /// The sign of the net multiplicity, if the entry survived collapsing.
    pub fn sign(&self) -> Option<UpdateSign> {
        if self.mult > 0.0 {
            Some(UpdateSign::Insert)
        } else if self.mult < 0.0 {
            Some(UpdateSign::Delete)
        } else {
            None
        }
    }
}

/// The GMR delta of one maximal run of same-relation events inside a
/// [`DeltaBatch`]: a signed multiplicity map over the updated tuples, with
/// entries in first-arrival order.
#[derive(Clone, Debug, Default)]
pub struct RelationDelta {
    relation: String,
    arity: usize,
    entries: Vec<DeltaEntry>,
    /// Collapse index: tuple → position in `entries`.
    index: FastMap<Tuple, u32>,
    events: u64,
    /// `(sign, entry index)` of the last event pushed into the run.
    last: Option<(UpdateSign, u32)>,
}

impl RelationDelta {
    /// The updated relation.
    pub fn relation(&self) -> &str {
        &self.relation
    }

    /// Tuple arity of this run (a same-relation event with a different arity
    /// starts a new run, so one run is always arity-uniform).
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Stream events folded into this run.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// The run's entries in first-arrival order, including cancelled
    /// (`mult == 0.0`) keys.
    pub fn entries(&self) -> &[DeltaEntry] {
        &self.entries
    }

    /// Sign and tuple of the last event pushed into this run (the binding for
    /// once-per-run re-evaluation statements).
    pub fn last_event(&self) -> Option<(UpdateSign, &Tuple)> {
        self.last
            .map(|(sign, i)| (sign, &self.entries[i as usize].key))
    }

    /// Sign and **entry index** of the last event pushed into this run (the
    /// index form of [`RelationDelta::last_event`], for callers tracking
    /// per-entry state).
    pub fn last_event_index(&self) -> Option<(UpdateSign, usize)> {
        self.last.map(|(sign, i)| (sign, i as usize))
    }

    /// Events whose work vanished through ring cancellation: the difference
    /// between the events pushed and the single-tuple firings that remain.
    pub fn collapsed_events(&self) -> u64 {
        let firings: u64 = self.entries.iter().map(|e| e.firings() as u64).sum();
        self.events.saturating_sub(firings)
    }

    /// The run as a standalone GMR delta over a positional schema (the
    /// interchange form — e.g. what a shard would ship to a peer).
    pub fn to_gmr(&self) -> Gmr {
        let mut g = Gmr::delta(self.arity);
        for e in &self.entries {
            g.add_tuple(e.key.clone(), e.mult);
        }
        g
    }

    /// Re-initialize this (pooled) run for a new relation, keeping buffer
    /// capacity.
    fn reset(&mut self, relation: &str, arity: usize) {
        self.relation.clear();
        self.relation.push_str(relation);
        self.arity = arity;
        self.entries.clear();
        self.index.clear();
        self.events = 0;
        self.last = None;
    }

    /// Fold a coalesced entry of another run into this one (merge support):
    /// ring-add its net multiplicity and carry its event count. Returns the
    /// entry's index in this run.
    fn fold_entry(&mut self, key: &Tuple, mult: f64, events: u32) -> u32 {
        use std::collections::hash_map::Entry;
        let idx = match self.index.entry(key.clone()) {
            Entry::Occupied(o) => {
                let i = *o.get();
                let e = &mut self.entries[i as usize];
                e.mult += mult;
                e.events += events;
                i
            }
            Entry::Vacant(v) => {
                let i = self.entries.len() as u32;
                let key = v.key().clone();
                v.insert(i);
                self.entries.push(DeltaEntry { key, mult, events });
                i
            }
        };
        self.events += events as u64;
        idx
    }

    /// Fold one tuple into the run (caller guarantees relation/arity match).
    /// One hash of the key either way (entry API).
    fn push_key(&mut self, key: Tuple, sign: UpdateSign) {
        use std::collections::hash_map::Entry;
        let mult = sign.multiplier();
        let idx = match self.index.entry(key) {
            Entry::Occupied(o) => {
                let i = *o.get();
                let e = &mut self.entries[i as usize];
                e.mult += mult;
                e.events += 1;
                i
            }
            Entry::Vacant(v) => {
                let i = self.entries.len() as u32;
                let key = v.key().clone(); // cheap: inline copy or Arc bump
                v.insert(i);
                self.entries.push(DeltaEntry {
                    key,
                    mult,
                    events: 1,
                });
                i
            }
        };
        self.events += 1;
        self.last = Some((sign, idx));
    }
}

/// A contiguous slice of the update stream as per-relation GMR deltas: the
/// native unit the engine processes (see the module docs).
#[derive(Clone, Debug, Default)]
pub struct DeltaBatch {
    /// Pooled runs; only the first `live` are part of the current batch.
    runs: Vec<RelationDelta>,
    live: usize,
    events: u64,
}

impl DeltaBatch {
    /// An empty batch.
    pub fn new() -> Self {
        DeltaBatch::default()
    }

    /// Build a batch from an event slice (convenience for tests and callers
    /// without a pooled batch to reuse).
    pub fn from_events<'a>(events: impl IntoIterator<Item = &'a UpdateEvent>) -> Self {
        let mut b = DeltaBatch::new();
        for e in events {
            b.push(e);
        }
        b
    }

    /// Drop the batch contents, retaining every buffer for reuse.
    pub fn clear(&mut self) {
        self.live = 0;
        self.events = 0;
    }

    /// Fold one event into the batch: appended to the current run when it
    /// targets the same relation with the same arity, otherwise a new run
    /// begins. Insert/delete events of one relation share a run — that is
    /// what lets opposite-sign same-key events cancel.
    pub fn push(&mut self, event: &UpdateEvent) {
        let run = self.run_for(&event.relation, event.tuple.len());
        run.push_key(Tuple::from(event.tuple.as_slice()), event.sign);
        self.events += 1;
    }

    /// [`DeltaBatch::push`] taking the event by value: the tuple's values are
    /// *moved* into the delta key instead of cloned — the cheapest conversion
    /// for producers that own their events (the serving writer's drained
    /// micro-batches, WAL replay records).
    pub fn push_owned(&mut self, event: UpdateEvent) {
        let run = self.run_for(&event.relation, event.tuple.len());
        run.push_key(Tuple::from(event.tuple), event.sign);
        self.events += 1;
    }

    fn run_for(&mut self, relation: &str, arity: usize) -> &mut RelationDelta {
        let need_new_run = match self.current() {
            Some(run) => run.relation != relation || run.arity != arity,
            None => true,
        };
        if need_new_run {
            if self.live == self.runs.len() {
                self.runs.push(RelationDelta::default());
            }
            self.runs[self.live].reset(relation, arity);
            self.live += 1;
        }
        &mut self.runs[self.live - 1]
    }

    fn current(&self) -> Option<&RelationDelta> {
        self.live.checked_sub(1).map(|i| &self.runs[i])
    }

    /// The batch's runs, in stream order.
    pub fn runs(&self) -> &[RelationDelta] {
        &self.runs[..self.live]
    }

    /// Total stream events folded into the batch.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Does the batch hold no events?
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// Events across all runs whose work vanished through ring cancellation.
    pub fn collapsed_events(&self) -> u64 {
        self.runs().iter().map(|r| r.collapsed_events()).sum()
    }

    /// Does any `(relation, arity)` pair own more than one run? When it does,
    /// [`DeltaBatch::merge_runs_into`] would shrink the batch; when it does
    /// not, merging is the identity and callers can skip it.
    pub fn has_repeated_relation(&self) -> bool {
        let runs = self.runs();
        runs.iter().enumerate().any(|(i, r)| {
            runs[..i]
                .iter()
                .any(|p| p.relation == r.relation && p.arity == r.arity)
        })
    }

    /// Rebuild this batch into `out` with all same-`(relation, arity)` runs
    /// ring-added into one run each, in first-appearance order. Because GMR
    /// addition is associative and commutative, the merged batch carries the
    /// same net delta per relation; cross-run same-key cancellations that the
    /// stream order hid now collapse. Merging reorders *processing* across
    /// relations, which is state-preserving exactly when every trigger
    /// statement computes a pure state difference (all-`Increment` programs —
    /// the engine checks this; `:=` statements are bound to a specific event
    /// position and must keep the original run boundaries).
    pub fn merge_runs_into(&self, out: &mut DeltaBatch) {
        out.clear();
        for run in self.runs() {
            let dst = match (0..out.live)
                .find(|&i| out.runs[i].relation == run.relation && out.runs[i].arity == run.arity)
            {
                Some(i) => &mut out.runs[i],
                None => {
                    if out.live == out.runs.len() {
                        out.runs.push(RelationDelta::default());
                    }
                    out.runs[out.live].reset(&run.relation, run.arity);
                    out.live += 1;
                    &mut out.runs[out.live - 1]
                }
            };
            for e in &run.entries {
                dst.fold_entry(&e.key, e.mult, e.events);
            }
            if let Some((sign, i)) = run.last {
                let key = &run.entries[i as usize].key;
                let idx = dst.index[key];
                dst.last = Some((sign, idx));
            }
        }
        out.events = self.events;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dbtoaster_gmr::Value;

    fn ins(rel: &str, vals: &[i64]) -> UpdateEvent {
        UpdateEvent::insert(rel, vals.iter().map(|&v| Value::long(v)).collect())
    }

    fn del(rel: &str, vals: &[i64]) -> UpdateEvent {
        UpdateEvent::delete(rel, vals.iter().map(|&v| Value::long(v)).collect())
    }

    #[test]
    fn runs_split_on_relation_change_and_arity_change() {
        let events = [
            ins("R", &[1, 2]),
            ins("R", &[3, 4]),
            ins("S", &[1]),
            ins("R", &[5, 6]),
            ins("R", &[7]), // same relation, different arity: new run
        ];
        let b = DeltaBatch::from_events(&events);
        assert_eq!(b.events(), 5);
        let runs = b.runs();
        assert_eq!(runs.len(), 4);
        assert_eq!(runs[0].relation(), "R");
        assert_eq!(runs[0].entries().len(), 2);
        assert_eq!(runs[1].relation(), "S");
        assert_eq!(runs[2].arity(), 2);
        assert_eq!(runs[3].arity(), 1);
    }

    #[test]
    fn same_key_events_collapse_by_ring_addition() {
        let events = [
            ins("R", &[1, 2]),
            ins("R", &[1, 2]),
            del("R", &[3, 4]),
            del("R", &[1, 2]),
        ];
        let b = DeltaBatch::from_events(&events);
        let run = &b.runs()[0];
        assert_eq!(run.events(), 4);
        assert_eq!(run.entries().len(), 2);
        assert_eq!(run.entries()[0].mult, 1.0); // +1 +1 −1
        assert_eq!(run.entries()[0].events, 3);
        assert_eq!(run.entries()[1].mult, -1.0);
        assert_eq!(run.collapsed_events(), 2); // one cancelled pair
        assert_eq!(b.collapsed_events(), 2);
    }

    #[test]
    fn net_zero_keys_vanish_but_keep_their_slot() {
        let events = [ins("R", &[1]), del("R", &[1])];
        let b = DeltaBatch::from_events(&events);
        let run = &b.runs()[0];
        assert_eq!(run.entries().len(), 1);
        assert_eq!(run.entries()[0].mult, 0.0);
        assert_eq!(run.entries()[0].firings(), 0);
        assert_eq!(run.entries()[0].sign(), None);
        assert_eq!(run.collapsed_events(), 2);
        // The cancelled key still anchors last_event for := binding.
        let (sign, key) = run.last_event().unwrap();
        assert_eq!(sign, UpdateSign::Delete);
        assert_eq!(key.as_slice(), &[Value::long(1)]);
    }

    #[test]
    fn batch_delta_equals_sum_of_singleton_deltas() {
        let events = [
            ins("R", &[1, 2]),
            del("R", &[5, 6]),
            ins("R", &[1, 2]),
            del("R", &[1, 2]),
        ];
        let b = DeltaBatch::from_events(&events);
        let batch_gmr = b.runs()[0].to_gmr();
        // Ring-sum the per-event singleton deltas.
        let mut sum = Gmr::delta(2);
        for e in &events {
            let mut d = Gmr::delta(2);
            d.add_tuple(Tuple::from(e.tuple.as_slice()), e.sign.multiplier());
            sum.merge_delta(&d);
        }
        assert!(batch_gmr.equivalent(&sum, 0.0));
    }

    #[test]
    fn merge_runs_folds_same_relation_runs_and_cancels_across_them() {
        let events = [
            ins("R", &[1, 2]),
            ins("S", &[7]), // splits R into two runs
            del("R", &[1, 2]),
            ins("R", &[3, 4]),
            ins("S", &[7]),
        ];
        let b = DeltaBatch::from_events(&events);
        assert_eq!(b.runs().len(), 4);
        assert!(b.has_repeated_relation());

        let mut merged = DeltaBatch::new();
        b.merge_runs_into(&mut merged);
        assert_eq!(merged.events(), b.events());
        let runs = merged.runs();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].relation(), "R");
        assert_eq!(runs[0].events(), 3);
        // Cross-run cancellation: the [1,2] insert/delete pair nets to zero.
        assert_eq!(runs[0].entries()[0].mult, 0.0);
        assert_eq!(runs[0].entries()[1].mult, 1.0);
        assert_eq!(runs[0].collapsed_events(), 2);
        assert_eq!(runs[1].relation(), "S");
        assert_eq!(runs[1].entries()[0].mult, 2.0);
        // last_event re-anchored to the merged entry slots.
        let (sign, key) = runs[0].last_event().unwrap();
        assert_eq!(sign, UpdateSign::Insert);
        assert_eq!(key.as_slice(), &[Value::long(3), Value::long(4)]);

        // A batch without repeats merges to itself.
        let single = DeltaBatch::from_events(&[ins("R", &[1, 2]), ins("S", &[7])]);
        assert!(!single.has_repeated_relation());
    }

    #[test]
    fn clear_retains_buffers_and_resets_state() {
        let mut b = DeltaBatch::from_events(&[ins("R", &[1, 2]), ins("S", &[1])]);
        b.clear();
        assert!(b.is_empty());
        assert!(b.runs().is_empty());
        b.push(&ins("T", &[9, 9]));
        assert_eq!(b.runs().len(), 1);
        assert_eq!(b.runs()[0].relation(), "T");
        assert_eq!(b.events(), 1);
    }
}
