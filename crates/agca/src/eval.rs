//! Reference evaluation semantics for AGCA expressions.
//!
//! [`eval`] implements the denotational semantics of Section 3.2: given a source of
//! relation contents and a context of bound variables, an expression evaluates to a GMR
//! over its output variables. Products pass bindings from left to right (sideways
//! information passing), comparisons and lifts evaluate their operands as scalars in the
//! current context, and `Sum_A` projects while summing multiplicities.
//!
//! The evaluator is the semantic ground truth of the whole system: the runtime executes
//! compiled trigger statements with it, and the test-suite checks every compilation
//! strategy against re-evaluation through it.
//!
//! ## Hot-path design
//!
//! Per-event evaluation is engineered to stay allocation-free in its inner loops:
//!
//! * **Cursor protocol** — [`RelationSource::for_each_matching`] streams borrowed
//!   `(&[Value], f64)` entries straight out of the backing store into a visitor
//!   closure; no result vector is materialized and no tuple is cloned on the read
//!   path. (The old collecting `iter_matching` shim is gone; callers that need an
//!   owned snapshot collect inside their visitor.)
//! * **Scoped bindings** — [`Bindings`] is a shadow stack, not a hash map. The
//!   product loop pushes one scope per factor (bind → recurse → unbind via
//!   [`Bindings`] truncation) and overwrites the scope's value slots per tuple, so
//!   per-tuple context handling costs a few `Value` clones and zero allocations
//!   (the old implementation cloned the entire context map per tuple). Lookups are
//!   reverse linear scans, which beats hashing at the handful-of-variables sizes
//!   AGCA contexts have, and makes shadowing automatic.
//! * **Tuple keys** — result GMRs are keyed by [`Tuple`] (inline up to
//!   [`dbtoaster_gmr::tuple::INLINE_CAP`] values), so group-by keys and join
//!   outputs of typical arity are built without heap allocation.
//! * **Join-order hoisting** — before evaluating a product, scalar lifts whose
//!   value is already computable are hoisted ahead of relation atoms that
//!   would otherwise be scanned with unbound arguments (see
//!   `product_order_by`), turning the compiler's delta-statement pattern
//!   `M(ok) * (ok := t)` into an indexed probe. The hoisted order depends only
//!   on the expression's structure, so a persistent [`EvalScratch`] memoizes
//!   it per product node instead of re-deriving it per event.

use crate::expr::{AtomKind, CmpOp, Expr, ScalarFn};
use dbtoaster_gmr::{FastMap, Gmr, Schema, Tuple, Value};
use std::fmt;
use std::sync::Arc;

/// A variable-binding context: a stack of `(name, value)` pairs with
/// last-binding-wins lookup (shadowing) and O(1) scope push/undo.
#[derive(Clone, Debug, Default)]
pub struct Bindings {
    entries: Vec<(String, Value)>,
}

impl Bindings {
    /// An empty context.
    pub fn new() -> Self {
        Bindings::default()
    }

    /// An empty context with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Bindings {
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Bind `name` to `value`, replacing the innermost existing binding of the
    /// same name (top-level map-like semantics).
    pub fn insert(&mut self, name: String, value: Value) {
        match self.entries.iter_mut().rev().find(|(n, _)| *n == name) {
            Some(slot) => slot.1 = value,
            None => self.entries.push((name, value)),
        }
    }

    /// [`Bindings::insert`] from a borrowed name: clones the name only when the
    /// binding is new. The batch executor re-seeds the same trigger variables
    /// once per delta entry, so steady-state re-binding allocates nothing.
    pub fn set(&mut self, name: &str, value: Value) {
        match self.entries.iter_mut().rev().find(|(n, _)| n == name) {
            Some(slot) => slot.1 = value,
            None => self.entries.push((name.to_string(), value)),
        }
    }

    /// Drop every binding, retaining capacity (the batch executor clears its
    /// reused context between statements so no stale name can leak across
    /// triggers).
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// The value bound to `name`, if any (innermost binding wins).
    #[inline]
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.entries
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }

    /// Is `name` bound?
    #[inline]
    pub fn contains_key(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Number of bindings (shadowed bindings count).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Is the context empty?
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(name, value)` pairs, innermost last.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }

    // ---- scope stack (crate-internal hot path) ----

    /// Current stack depth; pass to [`Bindings::unwind`] to undo.
    #[inline]
    pub(crate) fn mark(&self) -> usize {
        self.entries.len()
    }

    /// Push a shadowing binding slot for `name` with a placeholder value; the
    /// caller overwrites it through [`Bindings::set_slot`] before any lookup.
    #[inline]
    pub(crate) fn push_slot(&mut self, name: &str) {
        self.entries.push((name.to_string(), Value::Long(0)));
    }

    /// Overwrite the value of the slot at absolute index `slot`.
    #[inline]
    pub(crate) fn set_slot(&mut self, slot: usize, value: Value) {
        self.entries[slot].1 = value;
    }

    /// Drop every binding pushed since `mark`.
    #[inline]
    pub(crate) fn unwind(&mut self, mark: usize) {
        self.entries.truncate(mark);
    }
}

/// Errors raised during evaluation.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalError {
    /// A variable was read before being bound.
    UnboundVariable(String),
    /// A relation or view is not present in the [`RelationSource`].
    UnknownRelation(String),
    /// An expression used in scalar position produced a non-scalar result.
    NotScalar(String),
    /// A tuple's arity did not match the atom's argument list.
    ArityMismatch {
        relation: String,
        expected: usize,
        actual: usize,
    },
    /// A value-level operation failed (e.g. arithmetic on a string).
    Value(String),
    /// A scalar function was applied to the wrong number or type of arguments.
    BadApply(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(v) => write!(f, "unbound variable {v}"),
            EvalError::UnknownRelation(r) => write!(f, "unknown relation {r}"),
            EvalError::NotScalar(e) => write!(f, "expression is not scalar: {e}"),
            EvalError::ArityMismatch {
                relation,
                expected,
                actual,
            } => write!(
                f,
                "arity mismatch for {relation}: expected {expected}, got {actual}"
            ),
            EvalError::Value(e) => write!(f, "value error: {e}"),
            EvalError::BadApply(e) => write!(f, "bad scalar function application: {e}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<dbtoaster_gmr::value::ValueError> for EvalError {
    fn from(e: dbtoaster_gmr::value::ValueError) -> Self {
        EvalError::Value(e.to_string())
    }
}

/// A source of relation and view contents.
///
/// The primary access path is the **cursor protocol**: `for_each_matching`
/// receives a partial binding pattern (`pattern[i] = Some(v)` constrains
/// position `i` of the tuple to equal `v`) and streams every matching
/// `(tuple, multiplicity)` pair into the visitor as a *borrowed* slice —
/// implementations must not clone tuples to answer a lookup.
/// Implementations are free to stream any superset of the matching tuples
/// (the evaluator re-checks the constraints), but an index-backed
/// implementation that answers exactly is what gives compiled trigger
/// statements their constant-time behaviour.
pub trait RelationSource {
    /// Arity of the named relation, or `None` if unknown.
    fn relation_arity(&self, name: &str) -> Option<usize>;

    /// Stream tuples (with multiplicities) matching the partial binding
    /// pattern into `visit`.
    fn for_each_matching(
        &self,
        name: &str,
        pattern: &[Option<Value>],
        visit: &mut dyn FnMut(&[Value], f64),
    ) -> Result<(), EvalError>;
}

/// Does `tuple` satisfy the partial binding pattern?
#[inline]
pub fn matches_pattern(tuple: &[Value], pattern: &[Option<Value>]) -> bool {
    pattern
        .iter()
        .zip(tuple.iter())
        .all(|(p, v)| p.as_ref().map(|want| want == v).unwrap_or(true))
}

/// A trivial in-memory [`RelationSource`] backed by a map of GMRs. Used by tests, by the
/// re-evaluation (REP) baseline and as the initial database of the runtime engine.
#[derive(Clone, Debug, Default)]
pub struct MemSource {
    relations: dbtoaster_gmr::FastMap<String, Gmr>,
}

impl MemSource {
    /// An empty source.
    pub fn new() -> Self {
        MemSource::default()
    }

    /// Register (or replace) a relation.
    pub fn set_relation(&mut self, name: impl Into<String>, gmr: Gmr) {
        self.relations.insert(name.into(), gmr);
    }

    /// Get a relation's contents, if present.
    pub fn relation(&self, name: &str) -> Option<&Gmr> {
        self.relations.get(name)
    }

    /// Apply a single-tuple update (positive multiplicity = insert, negative = delete).
    pub fn apply_update(&mut self, name: &str, tuple: Vec<Value>, mult: f64) {
        if let Some(g) = self.relations.get_mut(name) {
            g.add_tuple(tuple, mult);
        } else {
            let schema = Schema::new((0..tuple.len()).map(|i| format!("c{i}")));
            let mut g = Gmr::new(schema);
            g.add_tuple(tuple, mult);
            self.relations.insert(name.to_string(), g);
        }
    }
}

impl RelationSource for MemSource {
    fn relation_arity(&self, name: &str) -> Option<usize> {
        self.relations.get(name).map(|g| g.schema().arity())
    }

    fn for_each_matching(
        &self,
        name: &str,
        pattern: &[Option<Value>],
        visit: &mut dyn FnMut(&[Value], f64),
    ) -> Result<(), EvalError> {
        let g = self
            .relations
            .get(name)
            .ok_or_else(|| EvalError::UnknownRelation(name.to_string()))?;
        for (t, m) in g.iter() {
            if matches_pattern(t, pattern) {
                visit(t, m);
            }
        }
        Ok(())
    }
}

/// Reusable evaluation scratch state: per-`Mul`-node join-order cache and a
/// recycled lookup-pattern buffer.
///
/// The interpreter re-derives the product evaluation order (`product_order_by`)
/// and re-probes `scalar_ready` for every product it evaluates — work that is
/// invariant per expression node, because the *set* of bound variables at any
/// node is determined by the expression's structure, never by the data. A
/// long-lived `EvalScratch` (the runtime engine keeps one per engine) memoizes
/// the order per node so repeated evaluations of the same statement pay O(1)
/// instead of O(factors²) per event, and recycles the atom-lookup pattern
/// buffer so `eval_atom` stops allocating one `Vec` per atom per event.
///
/// **Cache-key invariant:** orders are keyed by the address of the `Mul` node's
/// factor slice, so a scratch must not outlive the expressions it has seen, and
/// must only be reused across evaluations where each node is evaluated under
/// the same *bound-variable set* (always true for a fixed set of expression
/// roots, e.g. the statements of one trigger program). Fresh-scratch entry
/// points ([`eval`], [`eval_with`]) trivially satisfy both conditions.
#[derive(Debug, Default)]
pub struct EvalScratch {
    /// Mul-node factor-slice address → hoisted evaluation order
    /// (`None` = natural left-to-right order, nothing to hoist).
    product_orders: FastMap<usize, Option<Arc<[u16]>>>,
    /// Recycled lookup-pattern buffer for [`eval_atom`]; `None` while a
    /// (hypothetically re-entrant) atom evaluation is using it.
    pattern_buf: Option<Vec<Option<Value>>>,
}

/// Evaluate an expression to a GMR over its output variables.
pub fn eval(expr: &Expr, src: &dyn RelationSource, ctx: &Bindings) -> Result<Gmr, EvalError> {
    let mut scratch = ctx.clone();
    eval_with(expr, src, &mut scratch)
}

/// Evaluate an expression in a mutable context. Equivalent to [`eval`] but
/// avoids cloning the context; the context is returned unchanged (inner scopes
/// are pushed and unwound internally).
pub fn eval_with(
    expr: &Expr,
    src: &dyn RelationSource,
    ctx: &mut Bindings,
) -> Result<Gmr, EvalError> {
    eval_with_scratch(expr, src, ctx, &mut EvalScratch::default())
}

/// [`eval_with`] against a caller-owned [`EvalScratch`], letting repeated
/// evaluations of the same statements reuse cached join orders and buffers.
pub fn eval_with_scratch(
    expr: &Expr,
    src: &dyn RelationSource,
    ctx: &mut Bindings,
    scratch: &mut EvalScratch,
) -> Result<Gmr, EvalError> {
    match expr {
        Expr::Const(v) => Ok(Gmr::scalar(v.as_f64().map_err(EvalError::from)?)),
        Expr::Var(x) => {
            let v = ctx
                .get(x)
                .ok_or_else(|| EvalError::UnboundVariable(x.clone()))?;
            Ok(Gmr::scalar(v.as_f64().map_err(EvalError::from)?))
        }
        Expr::Rel(r) => eval_atom(r, src, ctx, scratch),
        Expr::Add(terms) => {
            let mut acc = Gmr::new(Schema::empty());
            for t in terms {
                let g = eval_with_scratch(t, src, ctx, scratch)?;
                if acc.is_empty() {
                    acc = g;
                } else if !g.is_empty() {
                    acc.add_gmr(&g);
                }
            }
            Ok(acc)
        }
        Expr::Mul(factors) => eval_product(factors, src, ctx, scratch),
        Expr::Neg(e) => Ok(eval_with_scratch(e, src, ctx, scratch)?.negate()),
        Expr::AggSum(gb, e) => {
            let inner = eval_with_scratch(e, src, ctx, scratch)?;
            let mut out = Gmr::new(Schema::new(gb.iter().cloned()));
            if inner.is_empty() {
                return Ok(out);
            }
            // Group-by columns may come from the inner result or from the context.
            let inner_schema = inner.schema().clone();
            let sources: Vec<Result<usize, Value>> = gb
                .iter()
                .map(|g| match inner_schema.index_of(g) {
                    Some(i) => Ok(Ok(i)),
                    None => ctx
                        .get(g)
                        .cloned()
                        .map(Err)
                        .ok_or_else(|| EvalError::UnboundVariable(g.clone())),
                })
                .collect::<Result<_, _>>()?;
            for (t, m) in inner.iter() {
                let key: Tuple = sources
                    .iter()
                    .map(|s| match s {
                        Ok(i) => t[*i].clone(),
                        Err(v) => v.clone(),
                    })
                    .collect();
                out.add_tuple(key, m);
            }
            Ok(out)
        }
        Expr::Lift(x, e) => {
            let v = eval_scalar_scratch(e, src, ctx, scratch)?;
            // If the variable is already bound, the lift degenerates into an equality
            // check on the bound value (Section 3.2's distinction between `=` and `:=`
            // is handled here by the context).
            if let Some(existing) = ctx.get(x) {
                if existing == &v {
                    return Ok(Gmr::scalar(1.0));
                }
                return Ok(Gmr::new(Schema::empty()));
            }
            Ok(Gmr::singleton(Schema::new([x.clone()]), [v], 1.0))
        }
        Expr::Cmp(op, l, r) => {
            let lv = eval_scalar_scratch(l, src, ctx, scratch)?;
            let rv = eval_scalar_scratch(r, src, ctx, scratch)?;
            if op.eval(&lv, &rv) {
                Ok(Gmr::scalar(1.0))
            } else {
                Ok(Gmr::new(Schema::empty()))
            }
        }
        Expr::Exists(e) => {
            let g = eval_with_scratch(e, src, ctx, scratch)?;
            Ok(g.map_multiplicities(|m| if m != 0.0 { 1.0 } else { 0.0 }))
        }
        Expr::Apply(f, args) => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval_scalar_scratch(a, src, ctx, scratch))
                .collect::<Result<_, _>>()?;
            let v = apply_scalar_fn(f, &vals)?;
            Ok(Gmr::scalar(v.as_f64().map_err(EvalError::from)?))
        }
    }
}

fn eval_atom(
    r: &crate::expr::RelRef,
    src: &dyn RelationSource,
    ctx: &mut Bindings,
    scratch: &mut EvalScratch,
) -> Result<Gmr, EvalError> {
    let _ = AtomKind::Stream; // all kinds are looked up the same way at evaluation time
    if let Some(arity) = src.relation_arity(&r.name) {
        if arity != r.args.len() {
            return Err(EvalError::ArityMismatch {
                relation: r.name.clone(),
                expected: r.args.len(),
                actual: arity,
            });
        }
    }
    // Partial binding pattern from the context, built in the recycled scratch
    // buffer (no per-call allocation once the buffer has grown to the maximum
    // atom arity). The visitor below never recurses into evaluation, so the
    // buffer cannot be needed re-entrantly; the take/put-back protocol falls
    // back to a fresh allocation if that ever changes.
    let mut pattern = scratch.pattern_buf.take().unwrap_or_default();
    pattern.clear();
    pattern.extend(r.args.iter().map(|a| ctx.get(a).cloned()));

    // Output schema: argument variables, deduplicated in order (repeated variables add
    // an implicit self-equality constraint).
    let mut out_cols: Vec<&String> = Vec::with_capacity(r.args.len());
    for a in &r.args {
        if !out_cols.contains(&a) {
            out_cols.push(a);
        }
    }
    let dedup = out_cols.len() != r.args.len();
    let mut out = Gmr::new(Schema::new(out_cols.iter().map(|c| c.as_str())));

    let mut arity_err: Option<EvalError> = None;
    let streamed = src.for_each_matching(&r.name, &pattern, &mut |t, m| {
        if arity_err.is_some() {
            return;
        }
        if t.len() != r.args.len() {
            arity_err = Some(EvalError::ArityMismatch {
                relation: r.name.clone(),
                expected: r.args.len(),
                actual: t.len(),
            });
            return;
        }
        // Re-check the context constraints (sources may over-approximate).
        if !matches_pattern(t, &pattern) {
            return;
        }
        if dedup {
            // Check repeated-variable consistency (each argument must agree with
            // its first occurrence) and project to the deduplicated schema. The
            // argument lists are short, so positional scans are allocation-free
            // and faster than a hash map here.
            let consistent = r.args.iter().enumerate().all(|(i, a)| {
                match r.args[..i].iter().position(|b| b == a) {
                    Some(j) => t[i] == t[j],
                    None => true,
                }
            });
            if !consistent {
                return;
            }
            let key: Tuple = out_cols
                .iter()
                .map(|c| {
                    let i = r
                        .args
                        .iter()
                        .position(|a| &a == c)
                        .expect("output columns come from the argument list");
                    t[i].clone()
                })
                .collect();
            out.add_tuple(key, m);
        } else {
            out.add_tuple(Tuple::from(t), m);
        }
    });
    pattern.clear();
    scratch.pattern_buf = Some(pattern);
    streamed?;
    if let Some(e) = arity_err {
        return Err(e);
    }
    Ok(out)
}

/// Is `e` a pure scalar expression (no collection-valued subterms) whose
/// variables are all bound (per the `extra` list of product-local outputs and
/// the `is_bound` context predicate)? Shared between the interpreter's product
/// hoisting and the plan compiler's static lowering
/// (see [`mod@crate::plan`]), so both make the same decision.
pub(crate) fn scalar_ready_by(e: &Expr, extra: &[&str], is_bound: &dyn Fn(&str) -> bool) -> bool {
    match e {
        Expr::Const(_) => true,
        Expr::Var(x) => extra.iter().any(|n| *n == x) || is_bound(x),
        Expr::Neg(inner) => scalar_ready_by(inner, extra, is_bound),
        Expr::Add(ts) | Expr::Mul(ts) | Expr::Apply(_, ts) => {
            ts.iter().all(|t| scalar_ready_by(t, extra, is_bound))
        }
        Expr::Cmp(_, l, r) => {
            scalar_ready_by(l, extra, is_bound) && scalar_ready_by(r, extra, is_bound)
        }
        // Rel / AggSum / Lift / Exists: collection-valued — never hoisted.
        _ => false,
    }
}

/// Variables a factor binds for the factors to its right.
fn push_outputs<'e>(f: &'e Expr, extra: &mut Vec<&'e str>) {
    match f {
        Expr::Rel(r) => extra.extend(r.args.iter().map(String::as_str)),
        Expr::Lift(x, _) => extra.push(x),
        Expr::AggSum(gb, _) => extra.extend(gb.iter().map(String::as_str)),
        Expr::Neg(e) | Expr::Exists(e) => push_outputs(e, extra),
        _ => {}
    }
}

/// Plan the evaluation order of product factors: left-to-right, except that
/// scalar lifts whose value is already computable are hoisted ahead of the
/// first relation atom that would otherwise leave their target unbound.
///
/// This turns the delta-statement pattern `M(ok) * (ok := t)` — which the
/// delta transform emits with the lift *after* the atom — into an indexed
/// probe of `M` instead of a full scan, restoring the paper's constant-time
/// per-update claim. It does not change the denotation: the product is
/// ring-commutative, only sideways information passing is order-sensitive,
/// and a hoisted lift depends exclusively on variables bound before the
/// product started.
///
/// Returns `None` when the hoisted order is the natural left-to-right order
/// (the common case), so callers can skip the indirection entirely. The order
/// depends only on which variables are bound — never on their values — which
/// is what lets both [`EvalScratch`] memoize it per node and the plan compiler
/// ([`mod@crate::plan`]) bake it into compiled kernels.
pub(crate) fn product_order_by(
    factors: &[Expr],
    is_bound: &dyn Fn(&str) -> bool,
) -> Option<Arc<[u16]>> {
    let mut order: Vec<u16> = Vec::with_capacity(factors.len());
    let mut extra: Vec<&str> = Vec::new();
    let mut hoisted = vec![false; factors.len()];
    for (i, factor) in factors.iter().enumerate() {
        if hoisted[i] {
            continue;
        }
        if let Expr::Rel(r) = factor {
            for a in &r.args {
                if extra.iter().any(|n| n == a) || is_bound(a) {
                    continue;
                }
                if let Some(j) = factors.iter().enumerate().skip(i + 1).position(|(j, f)| {
                    !hoisted[j]
                        && matches!(f, Expr::Lift(x, body)
                            if x == a && scalar_ready_by(body, &extra, is_bound))
                }) {
                    let j = j + i + 1;
                    hoisted[j] = true;
                    order.push(j as u16);
                    push_outputs(&factors[j], &mut extra);
                }
            }
        }
        order.push(i as u16);
        push_outputs(factor, &mut extra);
    }
    if order.iter().enumerate().all(|(i, &o)| i == o as usize) {
        None
    } else {
        Some(order.into())
    }
}

fn eval_product(
    factors: &[Expr],
    src: &dyn RelationSource,
    ctx: &mut Bindings,
    scratch: &mut EvalScratch,
) -> Result<Gmr, EvalError> {
    // The hoisted order is invariant per node (see `product_order_by`): compute
    // it once per node per scratch lifetime, not per event.
    let cache_key = factors.as_ptr() as usize;
    let cached = scratch.product_orders.get(&cache_key);
    // Guard against a violated lifetime invariant (a new expression's factor
    // slice reusing a freed slice's address): a cached permutation of the
    // wrong length is treated as a miss instead of indexing out of bounds.
    let valid = match &cached {
        Some(Some(o)) => o.len() == factors.len(),
        Some(None) => true,
        None => false,
    };
    let order: Option<Arc<[u16]>> = if valid {
        cached.cloned().unwrap()
    } else {
        let computed = product_order_by(factors, &|n| ctx.contains_key(n));
        scratch.product_orders.insert(cache_key, computed.clone());
        computed
    };
    let factor_at = |i: usize| match &order {
        Some(o) => &factors[o[i] as usize],
        None => &factors[i],
    };
    // Accumulator starts as the ring's one: {<> -> 1}.
    let mut acc = Gmr::scalar(1.0);
    for fi in 0..factors.len() {
        let factor = factor_at(fi);
        if acc.is_empty() {
            return Ok(Gmr::new(Schema::empty()));
        }
        let acc_schema = acc.schema().clone();
        let mut next: Option<Gmr> = None;

        // Open one binding scope for this factor: a shadow slot per accumulator
        // column, overwritten in place for every accumulator tuple. This is the
        // bind → recurse → unbind discipline that replaces per-tuple context
        // cloning.
        let mark = ctx.mark();
        for col in acc_schema.columns() {
            ctx.push_slot(col);
        }
        let mut failure: Option<EvalError> = None;
        for (t, m) in acc.iter() {
            for (i, v) in t.iter().enumerate() {
                ctx.set_slot(mark + i, v.clone());
            }
            let r = match eval_with_scratch(factor, src, ctx, scratch) {
                Ok(r) => r,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            };
            if r.is_empty() {
                continue;
            }
            let r_schema = r.schema().clone();
            if next.is_none() {
                next = Some(Gmr::new(acc_schema.join(&r_schema)));
            }
            let out = next.as_mut().unwrap();
            let shared = acc_schema.shared_positions(&r_schema);
            let new_positions: Vec<usize> = (0..r_schema.arity())
                .filter(|j| !shared.iter().any(|&(_, oj)| oj == *j))
                .collect();
            for (s, n) in r.iter() {
                // Join consistency on shared columns (defensive: most factors already
                // respect the bindings of ctx, but e.g. unbound lifts might not).
                if !shared.iter().all(|&(i, j)| t[i] == s[j]) {
                    continue;
                }
                let tuple: Tuple = t
                    .iter()
                    .cloned()
                    .chain(new_positions.iter().map(|&j| s[j].clone()))
                    .collect();
                out.add_tuple(tuple, m * n);
            }
        }
        ctx.unwind(mark);
        if let Some(e) = failure {
            return Err(e);
        }
        acc = next.unwrap_or_else(|| Gmr::new(Schema::empty()));
    }
    Ok(acc)
}

/// Evaluate an expression in scalar position (comparison operand, lift body, `Apply`
/// argument) to a single [`Value`].
pub fn eval_scalar(
    expr: &Expr,
    src: &dyn RelationSource,
    ctx: &Bindings,
) -> Result<Value, EvalError> {
    let mut scratch = ctx.clone();
    eval_scalar_with(expr, src, &mut scratch)
}

/// [`eval_scalar`] over a mutable context (no clone; context returned unchanged).
pub fn eval_scalar_with(
    expr: &Expr,
    src: &dyn RelationSource,
    ctx: &mut Bindings,
) -> Result<Value, EvalError> {
    eval_scalar_scratch(expr, src, ctx, &mut EvalScratch::default())
}

fn eval_scalar_scratch(
    expr: &Expr,
    src: &dyn RelationSource,
    ctx: &mut Bindings,
    scratch: &mut EvalScratch,
) -> Result<Value, EvalError> {
    match expr {
        Expr::Const(v) => Ok(v.clone()),
        Expr::Var(x) => ctx
            .get(x)
            .cloned()
            .ok_or_else(|| EvalError::UnboundVariable(x.clone())),
        Expr::Neg(e) => Ok(eval_scalar_scratch(e, src, ctx, scratch)?.neg()?),
        Expr::Apply(f, args) => {
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval_scalar_scratch(a, src, ctx, scratch))
                .collect::<Result<_, _>>()?;
            apply_scalar_fn(f, &vals)
        }
        Expr::Add(terms) => terms.iter().try_fold(Value::long(0), |acc, t| {
            let v = eval_scalar_scratch(t, src, ctx, scratch)?;
            Ok(acc.add(&v)?)
        }),
        Expr::Mul(factors) => factors.iter().try_fold(Value::long(1), |acc, t| {
            let v = eval_scalar_scratch(t, src, ctx, scratch)?;
            Ok(acc.mul(&v)?)
        }),
        // General case: evaluate to a GMR, which must be nullary (a scalar) — or have
        // all of its columns bound by the context (e.g. a decorrelated nested aggregate
        // `Sum[OK](LI(OK,Q)*Q)` looked up with OK bound), in which case the sum of its
        // multiplicities is the scalar value.
        other => {
            let g = eval_with_scratch(other, src, ctx, scratch)?;
            if g.schema().is_empty() || g.is_empty() {
                Ok(Value::double(g.scalar_value()))
            } else if g.schema().columns().iter().all(|c| ctx.contains_key(c)) {
                Ok(Value::double(g.iter().map(|(_, m)| m).sum()))
            } else {
                Err(EvalError::NotScalar(other.to_string()))
            }
        }
    }
}

/// Apply a scalar function to already-evaluated arguments.
pub fn apply_scalar_fn(f: &ScalarFn, args: &[Value]) -> Result<Value, EvalError> {
    match f {
        ScalarFn::Div => {
            if args.len() != 2 {
                return Err(EvalError::BadApply("div expects 2 arguments".into()));
            }
            Ok(args[0].div(&args[1])?)
        }
        ScalarFn::ListMax => {
            if args.is_empty() {
                return Err(EvalError::BadApply("listmax expects >= 1 argument".into()));
            }
            let mut best = args[0].as_f64()?;
            for a in &args[1..] {
                best = best.max(a.as_f64()?);
            }
            Ok(Value::double(best))
        }
        ScalarFn::Sqrt => {
            if args.len() != 1 {
                return Err(EvalError::BadApply("sqrt expects 1 argument".into()));
            }
            Ok(Value::double(args[0].as_f64()?.max(0.0).sqrt()))
        }
        ScalarFn::Like(pattern) => {
            let s = args
                .first()
                .and_then(|v| v.as_str())
                .ok_or_else(|| EvalError::BadApply("like expects a string argument".into()))?;
            Ok(Value::bool(like_match(pattern, s)))
        }
    }
}

/// Match a SQL `LIKE` pattern containing `%` wildcards (no `_` support).
pub fn like_match(pattern: &str, s: &str) -> bool {
    let parts: Vec<&str> = pattern.split('%').collect();
    if parts.len() == 1 {
        return pattern == s;
    }
    let mut rest = s;
    for (i, part) in parts.iter().enumerate() {
        if part.is_empty() {
            continue;
        }
        if i == 0 {
            match rest.strip_prefix(part) {
                Some(r) => rest = r,
                None => return false,
            }
        } else if i == parts.len() - 1 {
            return rest.ends_with(part);
        } else {
            match rest.find(part) {
                Some(pos) => rest = &rest[pos + part.len()..],
                None => return false,
            }
        }
    }
    true
}

/// Convenience: evaluate a comparison operator symbolically when both sides are
/// constants (used by the optimizer's partial evaluation).
pub fn const_cmp(op: CmpOp, l: &Value, r: &Value) -> bool {
    op.eval(l, r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp as Op;

    fn db() -> MemSource {
        // R(A,B) = {(1,2)->1, (3,5)->1, (4,2)->1}, S(C,D) = {(2,10)->1, (5,20)->2}
        let mut src = MemSource::new();
        let mut r = Gmr::new(Schema::new(["A", "B"]));
        r.add_tuple(vec![Value::long(1), Value::long(2)], 1.0);
        r.add_tuple(vec![Value::long(3), Value::long(5)], 1.0);
        r.add_tuple(vec![Value::long(4), Value::long(2)], 1.0);
        src.set_relation("R", r);
        let mut s = Gmr::new(Schema::new(["C", "D"]));
        s.add_tuple(vec![Value::long(2), Value::long(10)], 1.0);
        s.add_tuple(vec![Value::long(5), Value::long(20)], 2.0);
        src.set_relation("S", s);
        src
    }

    fn empty_ctx() -> Bindings {
        Bindings::new()
    }

    #[test]
    fn selection_via_comparison() {
        // Sum[](R(x,y) * (x < y)) = number of tuples with A < B = 3
        let e = Expr::agg_sum(
            Vec::<String>::new(),
            Expr::product_of([
                Expr::rel("R", ["x", "y"]),
                Expr::cmp(Op::Lt, Expr::var("x"), Expr::var("y")),
            ]),
        );
        let g = eval(&e, &db(), &empty_ctx()).unwrap();
        assert_eq!(g.scalar_value(), 2.0);
    }

    #[test]
    fn bound_variable_selects() {
        // Example 3: R(x,y) with x bound to 3 returns only the (3,5) tuple.
        let e = Expr::rel("R", ["x", "y"]);
        let mut ctx = Bindings::new();
        ctx.insert("x".into(), Value::long(3));
        let g = eval(&e, &db(), &ctx).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.get(&[Value::long(3), Value::long(5)]), 1.0);
    }

    #[test]
    fn example4_weighted_group_by() {
        // Sum[y](R(x,y) * 2 * x) over R = {(1,2),(3,5),(4,2)} gives {2 -> 10, 5 -> 6}.
        let e = Expr::agg_sum(
            ["y"],
            Expr::product_of([Expr::rel("R", ["x", "y"]), Expr::val(2), Expr::var("x")]),
        );
        let g = eval(&e, &db(), &empty_ctx()).unwrap();
        assert_eq!(g.get(&[Value::long(2)]), 10.0);
        assert_eq!(g.get(&[Value::long(5)]), 6.0);
    }

    #[test]
    fn equijoin_via_shared_variable() {
        // Sum[](R(a,b) * S(b,d) * d): join B=C via shared variable b.
        // Matches: (1,2)-(2,10) d=10; (4,2)-(2,10) d=10; (3,5)-(5,20) d=20*mult 2.
        let e = Expr::agg_sum(
            Vec::<String>::new(),
            Expr::product_of([
                Expr::rel("R", ["a", "b"]),
                Expr::rel("S", ["b", "d"]),
                Expr::var("d"),
            ]),
        );
        let g = eval(&e, &db(), &empty_ctx()).unwrap();
        assert_eq!(g.scalar_value(), 10.0 + 10.0 + 40.0);
    }

    #[test]
    fn lift_binds_nested_aggregate() {
        // Sum[a,b](R(a,b) * (z := Sum[](S(c,d)*(a > c)*d)) * (b < z))
        // Example 5 shape: for each R row, total D over S rows with C < A, kept if B < z.
        let qn = Expr::agg_sum(
            Vec::<String>::new(),
            Expr::product_of([
                Expr::rel("S", ["c", "d"]),
                Expr::cmp(Op::Gt, Expr::var("a"), Expr::var("c")),
                Expr::var("d"),
            ]),
        );
        let e = Expr::agg_sum(
            ["a", "b"],
            Expr::product_of([
                Expr::rel("R", ["a", "b"]),
                Expr::lift("z", qn),
                Expr::cmp(Op::Lt, Expr::var("b"), Expr::var("z")),
            ]),
        );
        let g = eval(&e, &db(), &empty_ctx()).unwrap();
        // R(1,2): z = 0 (no S.C < 1) -> 2 < 0 false.
        // R(3,5): z = 10 (S.C=2) -> 5 < 10 true.
        // R(4,2): z = 10 -> 2 < 10 true.
        assert_eq!(g.len(), 2);
        assert_eq!(g.get(&[Value::long(3), Value::long(5)]), 1.0);
        assert_eq!(g.get(&[Value::long(4), Value::long(2)]), 1.0);
    }

    #[test]
    fn lift_on_bound_variable_acts_as_equality() {
        let e = Expr::product_of([Expr::rel("R", ["a", "b"]), Expr::lift("b", Expr::val(2))]);
        let g = eval(&e, &db(), &empty_ctx()).unwrap();
        // Only rows with B = 2 survive.
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn negation_and_union() {
        // R - R = 0
        let e = Expr::sum_of([
            Expr::rel("R", ["a", "b"]),
            Expr::neg(Expr::rel("R", ["a", "b"])),
        ]);
        let g = eval(&e, &db(), &empty_ctx()).unwrap();
        assert!(g.is_empty());
    }

    #[test]
    fn exists_clamps_multiplicities() {
        let e = Expr::exists(Expr::rel("S", ["c", "d"]));
        let g = eval(&e, &db(), &empty_ctx()).unwrap();
        assert_eq!(g.get(&[Value::long(5), Value::long(20)]), 1.0);
    }

    #[test]
    fn scalar_functions() {
        let ctx = empty_ctx();
        let d = db();
        assert_eq!(
            eval_scalar(
                &Expr::apply(ScalarFn::Div, vec![Expr::val(10), Expr::val(4)]),
                &d,
                &ctx
            )
            .unwrap(),
            Value::double(2.5)
        );
        assert_eq!(
            eval_scalar(
                &Expr::apply(
                    ScalarFn::ListMax,
                    vec![Expr::val(1), Expr::val(7), Expr::val(3)]
                ),
                &d,
                &ctx
            )
            .unwrap(),
            Value::double(7.0)
        );
        assert_eq!(
            eval_scalar(
                &Expr::apply(
                    ScalarFn::Like("%BRASS".into()),
                    vec![Expr::Const(Value::str("SMALL BRASS"))]
                ),
                &d,
                &ctx
            )
            .unwrap(),
            Value::bool(true)
        );
    }

    #[test]
    fn like_matching() {
        assert!(like_match("%green%", "dark green metal"));
        assert!(like_match("PROMO%", "PROMO BURNISHED"));
        assert!(!like_match("PROMO%", "STANDARD"));
        assert!(like_match("abc", "abc"));
        assert!(!like_match("abc", "abcd"));
        assert!(like_match("%a%b%", "xxaxxbxx"));
        assert!(!like_match("%a%b%", "bbbb-a"));
    }

    #[test]
    fn unbound_variable_errors() {
        let e = Expr::var("missing");
        assert!(matches!(
            eval(&e, &db(), &empty_ctx()),
            Err(EvalError::UnboundVariable(_))
        ));
    }

    #[test]
    fn unknown_relation_errors() {
        let e = Expr::rel("Nope", ["x"]);
        assert!(matches!(
            eval(&e, &db(), &empty_ctx()),
            Err(EvalError::UnknownRelation(_))
        ));
    }

    #[test]
    fn repeated_variable_enforces_self_equality() {
        // T(x, x) keeps only tuples with equal columns.
        let mut src = db();
        let mut t = Gmr::new(Schema::new(["A", "B"]));
        t.add_tuple(vec![Value::long(1), Value::long(1)], 1.0);
        t.add_tuple(vec![Value::long(1), Value::long(2)], 1.0);
        src.set_relation("T", t);
        let e = Expr::rel("T", ["x", "x"]);
        let g = eval(&e, &src, &empty_ctx()).unwrap();
        assert_eq!(g.len(), 1);
        assert_eq!(g.get(&[Value::long(1)]), 1.0);
    }

    #[test]
    fn aggsum_with_context_group_var() {
        // Sum[k](S(c,d) * d) where k is bound from the context: the group key is taken
        // from the context (this is what trigger statements with loop substitution do).
        let e = Expr::agg_sum(
            ["k"],
            Expr::product_of([Expr::rel("S", ["c", "d"]), Expr::var("d")]),
        );
        let mut ctx = Bindings::new();
        ctx.insert("k".into(), Value::long(99));
        let g = eval(&e, &db(), &ctx).unwrap();
        assert_eq!(g.get(&[Value::long(99)]), 50.0);
    }
}
