//! Binding-pattern analysis: input and output variables of AGCA expressions.
//!
//! Every AGCA expression `Q[~x_in][~x_out]` has *input variables* (parameters that must
//! be bound before the expression can be evaluated — e.g. correlation variables of a
//! nested subquery, or the trigger variables introduced by the delta transform) and
//! *output variables* (the columns of its result schema). Section 3.3 of the paper.
//!
//! The analysis mirrors the evaluation order: products propagate bindings from left to
//! right ("sideways information passing"), so a comparison may legally reference a
//! variable produced by an atom to its left.

use crate::expr::Expr;
use std::collections::BTreeSet;
use std::fmt;

/// The binding pattern of an expression.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VarInfo {
    /// Variables that must be bound by the evaluation context.
    pub inputs: BTreeSet<String>,
    /// Output variables (result columns), in order of first production.
    pub outputs: Vec<String>,
}

impl VarInfo {
    fn push_output(&mut self, v: &str) {
        if !self.outputs.iter().any(|o| o == v) {
            self.outputs.push(v.to_string());
        }
    }
}

/// Errors raised by the scope analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScopeError {
    /// A group-by variable is neither produced by the aggregated expression nor bound.
    UnboundGroupBy(String),
    /// The terms of a union do not produce the same output columns.
    UnionSchemaMismatch(String, String),
}

impl fmt::Display for ScopeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScopeError::UnboundGroupBy(v) => write!(f, "group-by variable {v} is unbound"),
            ScopeError::UnionSchemaMismatch(a, b) => {
                write!(f, "union of incompatible schemas [{a}] and [{b}]")
            }
        }
    }
}

impl std::error::Error for ScopeError {}

/// Compute the binding pattern of `expr` given the already-bound variables `bound`.
pub fn var_info(expr: &Expr, bound: &BTreeSet<String>) -> Result<VarInfo, ScopeError> {
    let mut info = VarInfo::default();
    collect(expr, bound, &mut info)?;
    Ok(info)
}

/// Output variables of a closed expression (no externally bound variables).
pub fn output_vars(expr: &Expr) -> Vec<String> {
    var_info(expr, &BTreeSet::new())
        .map(|i| i.outputs)
        .unwrap_or_default()
}

/// Input variables of a closed expression.
pub fn input_vars(expr: &Expr) -> BTreeSet<String> {
    var_info(expr, &BTreeSet::new())
        .map(|i| i.inputs)
        .unwrap_or_default()
}

fn need(var: &str, bound: &BTreeSet<String>, produced: &VarInfo, info: &mut VarInfo) {
    if !bound.contains(var) && !produced.outputs.iter().any(|o| o == var) {
        info.inputs.insert(var.to_string());
    }
}

/// Collect the vars of a scalar-position expression (comparison side, `Apply` argument,
/// lift body): everything it needs that is not in scope becomes an input; its own
/// outputs (if any — e.g. a nested `AggSum` with no group-by has none) are discarded.
fn collect_scalar(
    expr: &Expr,
    bound: &BTreeSet<String>,
    outer: &VarInfo,
    info: &mut VarInfo,
) -> Result<(), ScopeError> {
    let mut scope = bound.clone();
    scope.extend(outer.outputs.iter().cloned());
    scope.extend(info.outputs.iter().cloned());
    let nested = var_info(expr, &scope)?;
    info.inputs.extend(nested.inputs);
    Ok(())
}

fn collect(expr: &Expr, bound: &BTreeSet<String>, info: &mut VarInfo) -> Result<(), ScopeError> {
    match expr {
        Expr::Const(_) => {}
        Expr::Var(x) => need(x, bound, &VarInfo::default(), info),
        Expr::Rel(r) => {
            for a in &r.args {
                info.push_output(a);
            }
        }
        Expr::Add(terms) => {
            let mut first: Option<Vec<String>> = None;
            for t in terms {
                let ti = var_info(t, bound)?;
                info.inputs.extend(ti.inputs);
                match &first {
                    None => {
                        for o in &ti.outputs {
                            info.push_output(o);
                        }
                        first = Some(ti.outputs);
                    }
                    Some(f) => {
                        let same =
                            f.len() == ti.outputs.len() && f.iter().all(|c| ti.outputs.contains(c));
                        if !same {
                            return Err(ScopeError::UnionSchemaMismatch(
                                f.join(", "),
                                ti.outputs.join(", "),
                            ));
                        }
                    }
                }
            }
        }
        Expr::Mul(factors) => {
            // Left-to-right: each factor sees the outputs of the factors before it.
            let mut scope = bound.clone();
            for f in factors {
                let fi = var_info(f, &scope)?;
                for i in fi.inputs {
                    if !scope.contains(&i) && !info.outputs.contains(&i) {
                        info.inputs.insert(i);
                    }
                }
                for o in &fi.outputs {
                    info.push_output(o);
                    scope.insert(o.clone());
                }
            }
        }
        Expr::Neg(e) | Expr::Exists(e) => collect(e, bound, info)?,
        Expr::AggSum(gb, e) => {
            let inner = var_info(e, bound)?;
            info.inputs.extend(inner.inputs);
            for g in gb {
                if inner.outputs.iter().any(|o| o == g) || bound.contains(g) {
                    info.push_output(g);
                } else {
                    return Err(ScopeError::UnboundGroupBy(g.clone()));
                }
            }
        }
        Expr::Lift(x, e) => {
            collect_scalar(e, bound, &VarInfo::default(), info)?;
            info.push_output(x);
        }
        Expr::Cmp(_, l, r) => {
            collect_scalar(l, bound, &VarInfo::default(), info)?;
            collect_scalar(r, bound, &VarInfo::default(), info)?;
        }
        Expr::Apply(_, args) => {
            for a in args {
                collect_scalar(a, bound, &VarInfo::default(), info)?;
            }
        }
    }
    Ok(())
}

/// Convenience: does the expression (in the given scope) have `var` as an input?
pub fn has_input_var(expr: &Expr, var: &str, bound: &BTreeSet<String>) -> bool {
    var_info(expr, bound)
        .map(|i| i.inputs.contains(var))
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::CmpOp as Op;

    fn bound(vars: &[&str]) -> BTreeSet<String> {
        vars.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn relation_atoms_produce_outputs() {
        let e = Expr::rel("R", ["A", "B"]);
        let i = var_info(&e, &BTreeSet::new()).unwrap();
        assert_eq!(i.outputs, vec!["A", "B"]);
        assert!(i.inputs.is_empty());
    }

    #[test]
    fn sideways_information_passing_in_products() {
        // R(A,B) * (A < C): C is an input, A is produced by the atom.
        let e = Expr::product_of([
            Expr::rel("R", ["A", "B"]),
            Expr::cmp(Op::Lt, Expr::var("A"), Expr::var("C")),
        ]);
        let i = var_info(&e, &BTreeSet::new()).unwrap();
        assert_eq!(i.outputs, vec!["A", "B"]);
        assert_eq!(i.inputs, bound(&["C"]));

        // With C bound from outside there are no inputs.
        let i2 = var_info(&e, &bound(&["C"])).unwrap();
        assert!(i2.inputs.is_empty());
    }

    #[test]
    fn comparison_before_binding_is_an_input() {
        // (A < C) * R(A,B): evaluation order is left to right, so A is required *before*
        // the atom produces it — it is an input of the whole product.
        let e = Expr::product_of([
            Expr::cmp(Op::Lt, Expr::var("A"), Expr::var("C")),
            Expr::rel("R", ["A", "B"]),
        ]);
        let i = var_info(&e, &BTreeSet::new()).unwrap();
        assert!(i.inputs.contains("A"));
        assert!(i.inputs.contains("C"));
    }

    #[test]
    fn lift_produces_its_target() {
        // (z := Sum[](S(C,D) * (A > C) * D)): correlated nested aggregate from Example 5.
        let nested = Expr::agg_sum(
            Vec::<String>::new(),
            Expr::product_of([
                Expr::rel("S", ["C", "D"]),
                Expr::cmp(Op::Gt, Expr::var("A"), Expr::var("C")),
                Expr::var("D"),
            ]),
        );
        let e = Expr::lift("z", nested);
        let i = var_info(&e, &BTreeSet::new()).unwrap();
        assert_eq!(i.outputs, vec!["z"]);
        assert_eq!(i.inputs, bound(&["A"]));
    }

    #[test]
    fn example5_full_query_has_no_inputs() {
        // Sum[A,B]( R(A,B) * (z := Qn) * (B < z) )
        let qn = Expr::agg_sum(
            Vec::<String>::new(),
            Expr::product_of([
                Expr::rel("S", ["C", "D"]),
                Expr::cmp(Op::Gt, Expr::var("A"), Expr::var("C")),
                Expr::var("D"),
            ]),
        );
        let q = Expr::agg_sum(
            ["A", "B"],
            Expr::product_of([
                Expr::rel("R", ["A", "B"]),
                Expr::lift("z", qn),
                Expr::cmp(Op::Lt, Expr::var("B"), Expr::var("z")),
            ]),
        );
        let i = var_info(&q, &BTreeSet::new()).unwrap();
        assert!(i.inputs.is_empty(), "inputs: {:?}", i.inputs);
        assert_eq!(i.outputs, vec!["A", "B"]);
    }

    #[test]
    fn aggsum_restricts_outputs() {
        let e = Expr::agg_sum(["B"], Expr::rel("R", ["A", "B"]));
        let i = var_info(&e, &BTreeSet::new()).unwrap();
        assert_eq!(i.outputs, vec!["B"]);
    }

    #[test]
    fn unbound_group_by_is_an_error() {
        let e = Expr::agg_sum(["Z"], Expr::rel("R", ["A", "B"]));
        assert!(matches!(
            var_info(&e, &BTreeSet::new()),
            Err(ScopeError::UnboundGroupBy(_))
        ));
        // ...unless the variable is bound from outside.
        assert!(var_info(&e, &bound(&["Z"])).is_ok());
    }

    #[test]
    fn union_schema_mismatch_detected() {
        let e = Expr::sum_of([Expr::rel("R", ["A"]), Expr::rel("S", ["B"])]);
        assert!(matches!(
            var_info(&e, &BTreeSet::new()),
            Err(ScopeError::UnionSchemaMismatch(..))
        ));
    }

    #[test]
    fn union_same_columns_ok() {
        let e = Expr::sum_of([Expr::rel("R", ["A", "B"]), Expr::rel("S", ["B", "A"])]);
        let i = var_info(&e, &BTreeSet::new()).unwrap();
        assert_eq!(i.outputs.len(), 2);
    }

    #[test]
    fn delta_style_lift_of_trigger_var() {
        // (A := r_a) * (B := r_b) — the single-tuple delta of R(A,B).
        let e = Expr::product_of([
            Expr::lift("A", Expr::var("r_a")),
            Expr::lift("B", Expr::var("r_b")),
        ]);
        let i = var_info(&e, &BTreeSet::new()).unwrap();
        assert_eq!(i.outputs, vec!["A", "B"]);
        assert_eq!(i.inputs, bound(&["r_a", "r_b"]));
    }
}
