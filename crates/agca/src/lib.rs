//! # AGCA — the AGgregate CAlculus of DBToaster
//!
//! This crate implements the query calculus at the core of the paper *"DBToaster:
//! Higher-order Delta Processing for Dynamic, Frequently Fresh Views"*:
//!
//! * [`expr`] — the AGCA abstract syntax (constants, variables, relation atoms, lifts,
//!   comparisons, `+`, `*`, `Sum_A`), Section 3.2;
//! * [`scope`] — binding-pattern analysis (input/output variables), Section 3.3;
//! * [`mod@eval`] — the reference evaluation semantics over GMRs, Section 3.2;
//! * [`mod@delta`] — the delta transform for single-tuple updates, Section 3.4;
//! * [`opt`] — the expression rewrites of Section 5.3: partial evaluation, polynomial
//!   expansion, unification, range-restriction extraction, decorrelation and
//!   canonicalization.
//!
//! The Higher-Order IVM compiler (`dbtoaster-compiler`) is a client of this crate: it
//! repeatedly takes deltas, simplifies them and decides which subexpressions to
//! materialize; the runtime (`dbtoaster-runtime`) evaluates the resulting trigger
//! statements with [`eval::eval`].
//!
//! ## Example: Example 2 of the paper
//!
//! ```
//! use dbtoaster_agca::prelude::*;
//!
//! // Q = Sum[]( O(ordk, xch) * LI(ordk, price) * xch * price )
//! let q = Expr::agg_sum(
//!     Vec::<String>::new(),
//!     Expr::product_of([
//!         Expr::rel("O", ["ordk", "xch"]),
//!         Expr::rel("LI", ["ordk", "price"]),
//!         Expr::var("xch"),
//!         Expr::var("price"),
//!     ]),
//! );
//! assert_eq!(q.degree(), 2);
//!
//! // The delta w.r.t. insertions into O has degree 1 ...
//! let upd = TupleUpdate::new("O", UpdateSign::Insert, &["ordk".into(), "xch".into()]);
//! let d = delta(&q, &upd);
//! assert_eq!(d.degree(), 1);
//!
//! // ... and the second-order delta is constant in the database.
//! let upd2 = TupleUpdate::new("LI", UpdateSign::Insert, &["ordk".into(), "price".into()]);
//! let dd = delta(&d, &upd2);
//! assert_eq!(dd.degree(), 0);
//! ```

pub mod batch;
pub mod delta;
pub mod eval;
pub mod expr;
pub mod opt;
pub mod plan;
pub mod scope;

pub use batch::{
    delta_abs_relation_name, delta_relation_name, DeltaBatch, DeltaEntry, RelationDelta,
};
pub use delta::{delta, higher_order_delta, TupleUpdate, UpdateEvent, UpdateSign};
pub use eval::{eval, eval_scalar, Bindings, EvalError, EvalScratch, MemSource, RelationSource};
pub use expr::{AtomKind, CmpOp, Expr, RelRef, ScalarFn};
pub use opt::{canonical_key, decorrelate, expand, simplify, Monomial, Polynomial};
pub use plan::{lower_statement, CompiledStmt, KernelCounters, KernelState, KernelWork};
pub use scope::{input_vars, output_vars, var_info, VarInfo};

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::batch::{DeltaBatch, DeltaEntry, RelationDelta};
    pub use crate::delta::{delta, higher_order_delta, TupleUpdate, UpdateEvent, UpdateSign};
    pub use crate::eval::{eval, eval_scalar, Bindings, EvalError, MemSource, RelationSource};
    pub use crate::expr::{AtomKind, CmpOp, Expr, RelRef, ScalarFn};
    pub use crate::opt::{canonical_key, decorrelate, expand, simplify, Monomial, Polynomial};
    pub use crate::plan::{lower_statement, CompiledStmt, KernelCounters, KernelState, KernelWork};
    pub use crate::scope::{input_vars, output_vars, var_info, VarInfo};
    pub use dbtoaster_gmr::prelude::*;
}
