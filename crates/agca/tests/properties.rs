//! Property-based tests of the AGCA calculus.
//!
//! The central invariants checked here, over randomly generated databases and update
//! sequences, are:
//!
//! * **delta correctness** — `Q(D + u) = Q(D) + (Δ_u Q)(D)` for single-tuple updates
//!   (Section 3.4), on a family of query shapes covering joins, aggregation,
//!   comparisons and nested aggregates;
//! * **semantics preservation of the optimizer** — `simplify` and polynomial expansion
//!   do not change the denotation of an expression;
//! * **higher-order termination** — repeatedly taking deltas of a query without nested
//!   aggregates reaches zero after `degree(Q)` steps.

use dbtoaster_agca::prelude::*;
use dbtoaster_gmr::FastMap;
use proptest::prelude::*;

// ---------------------------------------------------------------- random databases

#[derive(Clone, Debug)]
struct Db {
    r: Vec<(i64, i64)>,
    s: Vec<(i64, i64)>,
}

fn arb_db() -> impl Strategy<Value = Db> {
    (
        prop::collection::vec((0i64..6, 0i64..8), 0..10),
        prop::collection::vec((0i64..6, 0i64..8), 0..10),
    )
        .prop_map(|(r, s)| Db { r, s })
}

fn to_source(db: &Db) -> MemSource {
    let mut src = MemSource::new();
    let mut r = Gmr::new(Schema::new(["A", "B"]));
    for (a, b) in &db.r {
        r.add_tuple(vec![Value::long(*a), Value::long(*b)], 1.0);
    }
    src.set_relation("R", r);
    let mut s = Gmr::new(Schema::new(["C", "D"]));
    for (c, d) in &db.s {
        s.add_tuple(vec![Value::long(*c), Value::long(*d)], 1.0);
    }
    src.set_relation("S", s);
    src
}

// ---------------------------------------------------------------- query shapes

/// A family of query templates exercising the interesting structural cases.
fn query_shapes() -> Vec<(&'static str, Expr)> {
    let join_sum = Expr::agg_sum(
        Vec::<String>::new(),
        Expr::product_of([
            Expr::rel("R", ["A", "B"]),
            Expr::rel("S", ["B", "D"]),
            Expr::var("D"),
        ]),
    );
    let group_by = Expr::agg_sum(
        ["B"],
        Expr::product_of([Expr::rel("R", ["A", "B"]), Expr::var("A")]),
    );
    let selection = Expr::agg_sum(
        Vec::<String>::new(),
        Expr::product_of([
            Expr::rel("R", ["A", "B"]),
            Expr::cmp(CmpOp::Lt, Expr::var("A"), Expr::val(3)),
            Expr::var("B"),
        ]),
    );
    let self_join = Expr::agg_sum(
        ["A"],
        Expr::product_of([Expr::rel("R", ["A", "B"]), Expr::rel("R", ["A", "B2"])]),
    );
    let inequality_join = Expr::agg_sum(
        Vec::<String>::new(),
        Expr::product_of([
            Expr::rel("R", ["A", "B"]),
            Expr::rel("S", ["C", "D"]),
            Expr::cmp(CmpOp::Lt, Expr::var("B"), Expr::var("C")),
        ]),
    );
    let nested_correlated = Expr::agg_sum(
        ["A"],
        Expr::product_of([
            Expr::rel("R", ["A", "B"]),
            Expr::lift(
                "z",
                Expr::agg_sum(
                    Vec::<String>::new(),
                    Expr::product_of([
                        Expr::rel("S", ["C", "D"]),
                        Expr::cmp(CmpOp::Gt, Expr::var("A"), Expr::var("C")),
                        Expr::var("D"),
                    ]),
                ),
            ),
            Expr::cmp(CmpOp::Lt, Expr::var("B"), Expr::var("z")),
        ]),
    );
    let exists_like = Expr::agg_sum(
        ["A"],
        Expr::product_of([
            Expr::rel("R", ["A", "B"]),
            Expr::lift(
                "cnt",
                Expr::agg_sum(Vec::<String>::new(), Expr::rel("S", ["A", "D"])),
            ),
            Expr::cmp(CmpOp::Gt, Expr::var("cnt"), Expr::val(0)),
        ]),
    );
    vec![
        ("join_sum", join_sum),
        ("group_by", group_by),
        ("selection", selection),
        ("self_join", self_join),
        ("inequality_join", inequality_join),
        ("nested_correlated", nested_correlated),
        ("exists_like", exists_like),
    ]
}

fn eval_closed(e: &Expr, src: &MemSource) -> Gmr {
    eval(e, src, &Bindings::new()).unwrap_or_else(|err| panic!("eval failed: {err} on {e}"))
}

fn assert_gmr_eq(context: &str, a: &Gmr, b: &Gmr) {
    assert!(
        a.equivalent(b, 1e-6),
        "{context}: results differ\nleft:\n{a}\nright:\n{b}"
    );
}

// ----------------------------------------------------------------- the properties

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Q(D + u) = Q(D) + ΔQ(D) for every query shape, update target and sign.
    #[test]
    fn delta_rule_is_correct(
        db in arb_db(),
        a in 0i64..6,
        b in 0i64..8,
        into_r in any::<bool>(),
        deletion in any::<bool>(),
    ) {
        let (rel, cols): (&str, Vec<String>) = if into_r {
            ("R", vec!["A".into(), "B".into()])
        } else {
            ("S", vec!["C".into(), "D".into()])
        };
        let sign = if deletion { UpdateSign::Delete } else { UpdateSign::Insert };
        let update = TupleUpdate::new(rel, sign, &cols);

        for (name, q) in query_shapes() {
            let src = to_source(&db);

            // Q(D)
            let before = eval_closed(&q, &src);

            // ΔQ(D), with the trigger variables bound to the update tuple.
            let d = simplify(&delta(&q, &update));
            let mut ctx = Bindings::new();
            ctx.insert(update.trigger_vars[0].clone(), Value::long(a));
            ctx.insert(update.trigger_vars[1].clone(), Value::long(b));
            let delta_value = if d.is_zero() {
                Gmr::new(Schema::empty())
            } else {
                eval(&d, &src, &ctx).unwrap_or_else(|e| panic!("{name}: delta eval failed: {e} on {d}"))
            };

            // Q(D + u)
            let mut src2 = to_source(&db);
            src2.apply_update(rel, vec![Value::long(a), Value::long(b)], sign.multiplier());
            let after = eval_closed(&q, &src2);

            // Q(D) + ΔQ(D)
            let mut combined = before.clone();
            combined.add_gmr(&delta_value);
            assert_gmr_eq(&format!("{name} / {sign:?} {rel}"), &after, &combined);
        }
    }

    /// simplify() and expansion preserve the semantics of delta expressions.
    #[test]
    fn optimizer_preserves_semantics(db in arb_db(), a in 0i64..6, b in 0i64..8) {
        let update = TupleUpdate::new("R", UpdateSign::Insert, &["A".into(), "B".into()]);
        for (name, q) in query_shapes() {
            let src = to_source(&db);
            let raw = delta(&q, &update);
            if raw.is_zero() {
                continue;
            }
            let mut ctx = Bindings::new();
            ctx.insert(update.trigger_vars[0].clone(), Value::long(a));
            ctx.insert(update.trigger_vars[1].clone(), Value::long(b));

            let reference = eval(&raw, &src, &ctx).unwrap();
            let simplified = simplify(&raw);
            let via_simplify = if simplified.is_zero() {
                Gmr::new(Schema::empty())
            } else {
                eval(&simplified, &src, &ctx).unwrap()
            };
            assert_gmr_eq(&format!("{name}: simplify"), &reference, &via_simplify);

            let expanded = expand(&simplified).to_expr();
            let via_expand = if expanded.is_zero() {
                Gmr::new(Schema::empty())
            } else {
                eval(&expanded, &src, &ctx).unwrap()
            };
            assert_gmr_eq(&format!("{name}: expand"), &reference, &via_expand);

            let decorrelated = dbtoaster_agca::decorrelate(&q);
            let via_decorrelate = eval_closed(&decorrelated, &src);
            assert_gmr_eq(&format!("{name}: decorrelate"), &eval_closed(&q, &src), &via_decorrelate);
        }
    }

    /// Without nested aggregates, the (deg Q + 1)-th delta is identically zero.
    #[test]
    fn higher_order_deltas_terminate(_seed in 0u8..4) {
        let shapes: Vec<Expr> = query_shapes()
            .into_iter()
            .filter(|(name, _)| !name.starts_with("nested") && !name.starts_with("exists"))
            .map(|(_, q)| q)
            .collect();
        let updates = [
            TupleUpdate::new("R", UpdateSign::Insert, &["A".into(), "B".into()]),
            TupleUpdate::new("S", UpdateSign::Insert, &["C".into(), "D".into()]),
        ];
        for q in shapes {
            let deg = q.degree();
            let mut frontier = vec![q];
            for _ in 0..=deg {
                frontier = frontier
                    .iter()
                    .flat_map(|e| updates.iter().map(|u| simplify(&delta(e, u))))
                    .filter(|e| !e.is_zero())
                    .collect();
            }
            prop_assert!(
                frontier.is_empty(),
                "degree-{deg} query still has non-zero deltas after {} rounds",
                deg + 1
            );
        }
    }

    /// Canonicalization is invariant under variable renaming.
    #[test]
    fn canonicalization_invariant_under_renaming(suffix in "[a-z]{1,3}") {
        for (_, q) in query_shapes() {
            let renames: FastMap<String, String> = q
                .all_variables()
                .into_iter()
                .map(|v| (v.clone(), format!("{v}_{suffix}")))
                .collect();
            let renamed = q.rename_vars(&renames);
            prop_assert_eq!(canonical_key(&q), canonical_key(&renamed));
        }
    }
}
