//! Property-based tests of the GMR ring and the exact rational type.
//!
//! The correctness of the delta transform rests on GMRs with generalized union and
//! natural join forming a (commutative, distributive) ring structure; these properties
//! are checked here on randomly generated integer-multiplicity GMRs so the assertions
//! are exact.

use dbtoaster_gmr::{Gmr, Rational, Schema, Value};
use proptest::prelude::*;

/// A random GMR over the given columns with small integer keys and multiplicities.
fn arb_gmr(columns: &'static [&'static str]) -> impl Strategy<Value = Gmr> {
    let arity = columns.len();
    prop::collection::vec((prop::collection::vec(0i64..6, arity), -4i64..5), 0..12).prop_map(
        move |rows| {
            let mut g = Gmr::new(Schema::new(columns.iter().copied()));
            for (key, mult) in rows {
                g.add_tuple(
                    key.into_iter()
                        .map(Value::long)
                        .collect::<dbtoaster_gmr::Tuple>(),
                    mult as f64,
                );
            }
            g
        },
    )
}

fn assert_equiv(a: &Gmr, b: &Gmr) {
    assert!(a.equivalent(b, 1e-9), "GMRs differ:\n{a}\nvs\n{b}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn union_is_commutative(a in arb_gmr(&["x", "y"]), b in arb_gmr(&["x", "y"])) {
        let mut ab = a.clone();
        ab.add_gmr(&b);
        let mut ba = b.clone();
        ba.add_gmr(&a);
        assert_equiv(&ab, &ba);
    }

    #[test]
    fn union_is_associative(
        a in arb_gmr(&["x", "y"]),
        b in arb_gmr(&["x", "y"]),
        c in arb_gmr(&["x", "y"]),
    ) {
        let mut left = a.clone();
        left.add_gmr(&b);
        left.add_gmr(&c);
        let mut bc = b.clone();
        bc.add_gmr(&c);
        let mut right = a.clone();
        right.add_gmr(&bc);
        assert_equiv(&left, &right);
    }

    #[test]
    fn negation_is_additive_inverse(a in arb_gmr(&["x", "y"])) {
        let mut z = a.clone();
        z.add_gmr(&a.negate());
        prop_assert!(z.is_empty());
    }

    #[test]
    fn join_is_commutative_up_to_column_order(
        a in arb_gmr(&["x", "y"]),
        b in arb_gmr(&["y", "z"]),
    ) {
        let ab = a.join(&b);
        let ba = b.join(&a);
        assert_equiv(&ab, &ba);
    }

    #[test]
    fn join_is_associative(
        a in arb_gmr(&["x", "y"]),
        b in arb_gmr(&["y", "z"]),
        c in arb_gmr(&["z", "w"]),
    ) {
        assert_equiv(&a.join(&b).join(&c), &a.join(&b.join(&c)));
    }

    #[test]
    fn join_distributes_over_union(
        a in arb_gmr(&["x", "y"]),
        b in arb_gmr(&["y", "z"]),
        c in arb_gmr(&["y", "z"]),
    ) {
        // a * (b + c) = a*b + a*c
        let mut bc = b.clone();
        bc.add_gmr(&c);
        let left = a.join(&bc);
        let mut right = a.join(&b);
        right.add_gmr(&a.join(&c));
        assert_equiv(&left, &right);
    }

    #[test]
    fn scalar_one_is_multiplicative_identity(a in arb_gmr(&["x", "y"])) {
        assert_equiv(&a.join(&Gmr::scalar(1.0)), &a);
        assert_equiv(&Gmr::scalar(1.0).join(&a), &a);
    }

    #[test]
    fn empty_gmr_is_multiplicative_zero(a in arb_gmr(&["x", "y"])) {
        let zero = Gmr::new(Schema::new(["y", "z"]));
        prop_assert!(a.join(&zero).is_empty());
    }

    #[test]
    fn agg_sum_is_linear(a in arb_gmr(&["x", "y"]), b in arb_gmr(&["x", "y"])) {
        // Sum_x(a + b) = Sum_x(a) + Sum_x(b)
        let cols = vec!["x".to_string()];
        let mut ab = a.clone();
        ab.add_gmr(&b);
        let left = ab.agg_sum(&cols);
        let mut right = a.agg_sum(&cols);
        right.add_gmr(&b.agg_sum(&cols));
        assert_equiv(&left, &right);
    }

    #[test]
    fn agg_sum_preserves_total_multiplicity(a in arb_gmr(&["x", "y"])) {
        let total: f64 = a.iter().map(|(_, m)| m).sum();
        let grouped = a.agg_sum(&["x".to_string()]);
        let grouped_total: f64 = grouped.iter().map(|(_, m)| m).sum();
        prop_assert!((total - grouped_total).abs() < 1e-9);
    }

    #[test]
    fn reorder_round_trips(a in arb_gmr(&["x", "y"])) {
        let r = a.reorder(&Schema::new(["y", "x"]));
        assert_equiv(&a, &r);
        let rr = r.reorder(&Schema::new(["x", "y"]));
        prop_assert_eq!(a.len(), rr.len());
    }
}

// ----------------------------------------------------------------- rational numbers

fn arb_rational() -> impl Strategy<Value = Rational> {
    (-50i128..50, 1i128..20).prop_map(|(n, d)| Rational::new(n, d))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn rational_field_axioms(a in arb_rational(), b in arb_rational(), c in arb_rational()) {
        prop_assert_eq!(a + b, b + a);
        prop_assert_eq!((a + b) + c, a + (b + c));
        prop_assert_eq!(a * b, b * a);
        prop_assert_eq!((a * b) * c, a * (b * c));
        prop_assert_eq!(a * (b + c), a * b + a * c);
        prop_assert_eq!(a + Rational::ZERO, a);
        prop_assert_eq!(a * Rational::ONE, a);
        prop_assert_eq!(a - a, Rational::ZERO);
        if !b.is_zero() {
            prop_assert_eq!((a / b) * b, a);
        }
    }

    #[test]
    fn rational_ordering_consistent_with_f64(a in arb_rational(), b in arb_rational()) {
        if a < b {
            prop_assert!(a.to_f64() <= b.to_f64());
        }
        if a == b {
            prop_assert!((a.to_f64() - b.to_f64()).abs() < 1e-12);
        }
    }
}
