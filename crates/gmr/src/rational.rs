//! Exact rational numbers.
//!
//! The paper defines GMR multiplicities over ℚ. The runtime uses `f64` for speed, but
//! the algebraic property tests (ring axioms, delta correctness) need exact arithmetic
//! to avoid false failures from floating-point rounding. This module provides a small
//! normalized `i128` rational type for that purpose.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

/// An exact rational number `num / den` with `den > 0` and `gcd(num, den) == 1`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rational {
    num: i128,
    den: i128,
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.abs()
}

impl Rational {
    /// The rational zero.
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    /// The rational one.
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Construct `num / den`, normalizing sign and common factors. Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den).max(1);
        Rational {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    /// Construct from an integer.
    pub fn from_int(v: i64) -> Self {
        Rational {
            num: v as i128,
            den: 1,
        }
    }

    /// Numerator (after normalization).
    pub fn numerator(&self) -> i128 {
        self.num
    }

    /// Denominator (always positive).
    pub fn denominator(&self) -> i128 {
        self.den
    }

    /// Is this exactly zero?
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    /// Convert to `f64` (lossy).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    /// Multiplicative inverse; panics on zero.
    pub fn recip(&self) -> Rational {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rational::new(self.den, self.num)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.den + rhs.num * self.den, self.den * rhs.den)
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Rational) -> Rational {
        self + (-rhs)
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Rational) -> Rational {
        Rational::new(self.num * rhs.num, self.den * rhs.den)
    }
}

impl Div for Rational {
    type Output = Rational;
    #[allow(clippy::suspicious_arithmetic_impl)] // division as multiply-by-reciprocal
    fn div(self, rhs: Rational) -> Rational {
        self * rhs.recip()
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        (self.num * other.den).cmp(&(other.num * self.den))
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from_int(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, 5), Rational::ZERO);
    }

    #[test]
    fn field_operations() {
        let a = Rational::new(1, 3);
        let b = Rational::new(1, 6);
        assert_eq!(a + b, Rational::new(1, 2));
        assert_eq!(a - b, Rational::new(1, 6));
        assert_eq!(a * b, Rational::new(1, 18));
        assert_eq!(a / b, Rational::from_int(2));
        assert_eq!(-a, Rational::new(-1, 3));
        assert_eq!(a.recip(), Rational::from_int(3));
    }

    #[test]
    fn ordering_and_display() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::ZERO);
        assert_eq!(format!("{}", Rational::new(3, 1)), "3");
        assert_eq!(format!("{}", Rational::new(1, 2)), "1/2");
    }

    #[test]
    fn to_f64_roundtrip() {
        assert_eq!(Rational::new(1, 4).to_f64(), 0.25);
        assert_eq!(Rational::from_int(-7).to_f64(), -7.0);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }
}
