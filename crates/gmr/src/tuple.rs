//! Tuples: ordered sequences of [`Value`]s.
//!
//! The paper models a tuple as a partial function from column names to values; in this
//! implementation a tuple is an ordered `Vec<Value>` whose positions are interpreted
//! through a [`Schema`](crate::schema::Schema). Keeping names out of the tuple makes the
//! runtime's hash-map keys compact.

use crate::value::Value;

/// A tuple is an ordered list of values, positionally interpreted via a schema.
pub type Tuple = Vec<Value>;

/// Project a tuple onto the given positions.
#[inline]
pub fn project(tuple: &[Value], positions: &[usize]) -> Tuple {
    positions.iter().map(|&i| tuple[i].clone()).collect()
}

/// Concatenate two tuples.
#[inline]
pub fn concat(left: &[Value], right: &[Value]) -> Tuple {
    let mut out = Vec::with_capacity(left.len() + right.len());
    out.extend_from_slice(left);
    out.extend_from_slice(right);
    out
}

/// Check whether two tuples agree on a set of position pairs
/// (used when testing join consistency).
#[inline]
pub fn consistent_on(left: &[Value], right: &[Value], pairs: &[(usize, usize)]) -> bool {
    pairs.iter().all(|&(l, r)| left[l] == right[r])
}

/// Build the empty (nullary) tuple, the key of scalar GMRs.
#[inline]
pub fn empty() -> Tuple {
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| Value::long(v)).collect()
    }

    #[test]
    fn project_reorders_and_duplicates() {
        let tup = t(&[10, 20, 30]);
        assert_eq!(project(&tup, &[2, 0]), t(&[30, 10]));
        assert_eq!(project(&tup, &[1, 1]), t(&[20, 20]));
        assert_eq!(project(&tup, &[]), empty());
    }

    #[test]
    fn concat_appends() {
        assert_eq!(concat(&t(&[1]), &t(&[2, 3])), t(&[1, 2, 3]));
        assert_eq!(concat(&[], &t(&[2])), t(&[2]));
    }

    #[test]
    fn consistency_checks_pairs() {
        let a = t(&[1, 2, 3]);
        let b = t(&[3, 2]);
        assert!(consistent_on(&a, &b, &[(2, 0), (1, 1)]));
        assert!(!consistent_on(&a, &b, &[(0, 0)]));
        assert!(consistent_on(&a, &b, &[]));
    }
}
