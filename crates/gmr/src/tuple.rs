//! Tuples: ordered sequences of [`Value`]s, optimized for use as map keys.
//!
//! The paper models a tuple as a partial function from column names to values; here a
//! tuple is an ordered sequence of values positionally interpreted through a
//! [`Schema`](crate::schema::Schema). [`Tuple`] is the shared key type of the whole
//! system: GMR entries, view-map keys and secondary-index entries all use it.
//!
//! ## Representation
//!
//! Tuples up to [`INLINE_CAP`] values are stored **inline** (no heap allocation, no
//! pointer chase on hash/compare); longer tuples spill to a shared `Arc<[Value]>` slab.
//! Both representations make `clone` cheap — at most [`INLINE_CAP`] `Value` clones
//! (a `Value` clone is a memcpy or an `Arc` refcount bump) or a single refcount bump —
//! which is what lets the runtime maintain secondary indexes without per-event
//! allocations. Tuples are immutable after construction except for [`Tuple::push`],
//! which is only used on cold paths.

use crate::value::Value;
use std::borrow::Borrow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::Arc;

/// Maximum arity stored inline (covers the vast majority of view keys).
pub const INLINE_CAP: usize = 3;

/// Filler for unused inline slots: a `Value::Long` is allocation-free to create
/// and drop.
#[inline]
fn filler() -> Value {
    Value::Long(0)
}

#[inline]
fn filler_buf() -> [Value; INLINE_CAP] {
    std::array::from_fn(|_| filler())
}

#[derive(Clone, Debug)]
enum Repr {
    Inline { len: u8, buf: [Value; INLINE_CAP] },
    Heap(Arc<[Value]>),
}

/// An ordered list of values, positionally interpreted via a schema.
#[derive(Clone, Debug)]
pub struct Tuple {
    repr: Repr,
}

impl Tuple {
    /// The empty (nullary) tuple, the key of scalar GMRs.
    #[inline]
    pub fn new() -> Tuple {
        Tuple {
            repr: Repr::Inline {
                len: 0,
                buf: filler_buf(),
            },
        }
    }

    /// The values as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[Value] {
        match &self.repr {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Heap(values) => values,
        }
    }

    /// Number of values.
    #[inline]
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(values) => values.len(),
        }
    }

    /// Is this the nullary tuple?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copy into a plain `Vec<Value>`.
    #[inline]
    pub fn to_vec(&self) -> Vec<Value> {
        self.as_slice().to_vec()
    }

    /// Append a value (cold path: spills to the heap representation beyond
    /// [`INLINE_CAP`] and rebuilds shared slabs).
    pub fn push(&mut self, value: Value) {
        match &mut self.repr {
            Repr::Inline { len, buf } if (*len as usize) < INLINE_CAP => {
                buf[*len as usize] = value;
                *len += 1;
            }
            _ => {
                let mut values = self.to_vec();
                values.push(value);
                self.repr = Repr::Heap(values.into());
            }
        }
    }

    /// Does the tuple live in the inline representation?
    #[inline]
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline { .. })
    }
}

impl Default for Tuple {
    #[inline]
    fn default() -> Tuple {
        Tuple::new()
    }
}

impl Deref for Tuple {
    type Target = [Value];

    #[inline]
    fn deref(&self) -> &[Value] {
        self.as_slice()
    }
}

impl Borrow<[Value]> for Tuple {
    #[inline]
    fn borrow(&self) -> &[Value] {
        self.as_slice()
    }
}

impl AsRef<[Value]> for Tuple {
    #[inline]
    fn as_ref(&self) -> &[Value] {
        self.as_slice()
    }
}

// Hash/Eq/Ord delegate to the value slice so that a `Tuple` key can be probed
// with a borrowed `&[Value]` (`Borrow` requires identical Hash/Eq behaviour).
impl Hash for Tuple {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state)
    }
}

impl PartialEq for Tuple {
    #[inline]
    fn eq(&self, other: &Tuple) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Tuple {}

impl PartialEq<Vec<Value>> for Tuple {
    #[inline]
    fn eq(&self, other: &Vec<Value>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<Tuple> for Vec<Value> {
    #[inline]
    fn eq(&self, other: &Tuple) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[Value]> for Tuple {
    #[inline]
    fn eq(&self, other: &[Value]) -> bool {
        self.as_slice() == other
    }
}

impl PartialOrd for Tuple {
    #[inline]
    fn partial_cmp(&self, other: &Tuple) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Tuple {
    #[inline]
    fn cmp(&self, other: &Tuple) -> Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl FromIterator<Value> for Tuple {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Tuple {
        let mut it = iter.into_iter();
        let mut buf = filler_buf();
        let mut len = 0usize;
        while let Some(v) = it.next() {
            if len < INLINE_CAP {
                buf[len] = v;
                len += 1;
            } else {
                // Spill: move the inline prefix plus the rest into one Vec.
                let (lo, _) = it.size_hint();
                let mut values = Vec::with_capacity(INLINE_CAP + 1 + lo);
                values.extend(buf);
                values.push(v);
                values.extend(it);
                return Tuple {
                    repr: Repr::Heap(values.into()),
                };
            }
        }
        Tuple {
            repr: Repr::Inline {
                len: len as u8,
                buf,
            },
        }
    }
}

impl From<Vec<Value>> for Tuple {
    #[inline]
    fn from(values: Vec<Value>) -> Tuple {
        if values.len() <= INLINE_CAP {
            values.into_iter().collect()
        } else {
            Tuple {
                repr: Repr::Heap(values.into()),
            }
        }
    }
}

impl From<&[Value]> for Tuple {
    #[inline]
    fn from(values: &[Value]) -> Tuple {
        values.iter().cloned().collect()
    }
}

impl<const N: usize> From<[Value; N]> for Tuple {
    #[inline]
    fn from(values: [Value; N]) -> Tuple {
        values.into_iter().collect()
    }
}

impl From<Tuple> for Vec<Value> {
    #[inline]
    fn from(t: Tuple) -> Vec<Value> {
        match t.repr {
            Repr::Inline { len, buf } => {
                let mut v = Vec::with_capacity(len as usize);
                v.extend(buf.into_iter().take(len as usize));
                v
            }
            Repr::Heap(values) => values.to_vec(),
        }
    }
}

impl<'a> IntoIterator for &'a Tuple {
    type Item = &'a Value;
    type IntoIter = std::slice::Iter<'a, Value>;

    #[inline]
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ">")
    }
}

/// Project a tuple onto the given positions.
#[inline]
pub fn project(tuple: &[Value], positions: &[usize]) -> Tuple {
    positions.iter().map(|&i| tuple[i].clone()).collect()
}

/// Concatenate two tuples.
#[inline]
pub fn concat(left: &[Value], right: &[Value]) -> Tuple {
    left.iter().chain(right.iter()).cloned().collect()
}

/// Check whether two tuples agree on a set of position pairs
/// (used when testing join consistency).
#[inline]
pub fn consistent_on(left: &[Value], right: &[Value], pairs: &[(usize, usize)]) -> bool {
    pairs.iter().all(|&(l, r)| left[l] == right[r])
}

/// Build the empty (nullary) tuple, the key of scalar GMRs.
#[inline]
pub fn empty() -> Tuple {
    Tuple::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::FxBuildHasher;
    use std::hash::BuildHasher;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| Value::long(v)).collect()
    }

    #[test]
    fn project_reorders_and_duplicates() {
        let tup = t(&[10, 20, 30]);
        assert_eq!(project(&tup, &[2, 0]), t(&[30, 10]));
        assert_eq!(project(&tup, &[1, 1]), t(&[20, 20]));
        assert_eq!(project(&tup, &[]), empty());
    }

    #[test]
    fn concat_appends() {
        assert_eq!(concat(&t(&[1]), &t(&[2, 3])), t(&[1, 2, 3]));
        assert_eq!(concat(&[], &t(&[2])), t(&[2]));
    }

    #[test]
    fn consistency_checks_pairs() {
        let a = t(&[1, 2, 3]);
        let b = t(&[3, 2]);
        assert!(consistent_on(&a, &b, &[(2, 0), (1, 1)]));
        assert!(!consistent_on(&a, &b, &[(0, 0)]));
        assert!(consistent_on(&a, &b, &[]));
    }

    #[test]
    fn small_tuples_stay_inline_and_long_ones_spill() {
        assert!(t(&[1, 2, 3]).is_inline());
        assert!(!t(&[1, 2, 3, 4, 5]).is_inline());
        assert_eq!(t(&[1, 2, 3, 4, 5]).len(), 5);
        assert_eq!(t(&[1, 2, 3, 4, 5])[4], Value::long(5));
    }

    #[test]
    fn push_crosses_the_inline_boundary() {
        let mut tup = t(&[1, 2]);
        tup.push(Value::long(3));
        assert_eq!(tup, t(&[1, 2, 3]));
        let mut empty = Tuple::new();
        empty.push(Value::str("x"));
        assert_eq!(empty.len(), 1);
    }

    #[test]
    fn hash_agrees_with_borrowed_slice() {
        let hasher = FxBuildHasher::default();
        for tup in [t(&[]), t(&[7]), t(&[1, 2, 3, 4, 5, 6])] {
            assert_eq!(hasher.hash_one(&tup), hasher.hash_one(tup.as_slice()));
        }
    }

    #[test]
    fn vec_round_trip_and_equality() {
        let v = vec![Value::long(1), Value::str("a")];
        let tup = Tuple::from(v.clone());
        assert_eq!(tup, v);
        assert_eq!(v, tup);
        assert_eq!(Vec::<Value>::from(tup.clone()), v);
        assert_eq!(tup.to_vec(), v);
    }

    #[test]
    fn display_renders_values() {
        assert_eq!(format!("{}", t(&[1, 2])), "<1, 2>");
    }
}
