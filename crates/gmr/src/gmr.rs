//! The [`Gmr`] collection type and its ring operations.
//!
//! A GMR maps tuples to multiplicities and is non-zero on finitely many tuples. The two
//! ring operations are generalized union ([`Gmr::add_gmr`], tuple-wise addition of
//! multiplicities) and natural join ([`Gmr::join`], multiplication of multiplicities of
//! join-compatible tuples). Group-by summation ([`Gmr::agg_sum`]) is the
//! multiplicity-preserving projection `Sum_A` of the paper.
//!
//! Multiplicities are `f64` at runtime; exactly-zero entries are removed eagerly so that
//! an insertion followed by the corresponding deletion restores the original GMR.
//!
//! ## Snapshot sharing
//!
//! A GMR's tuple map has two representations: **owned** (a plain [`FastMap`],
//! the working form — mutation has zero synchronization overhead) and
//! **shared** (an `Arc`'d map produced by [`Gmr::from_shared`], the form the
//! runtime's view store hands out as point-in-time snapshots). Cloning a
//! shared GMR is a reference-count bump; mutating one first copies it out to
//! an owned map (copy-on-write). This keeps the single-threaded evaluation
//! hot path free of atomics while making the serving layer's epoch-published
//! snapshots O(1) to clone and immutable by construction.

use crate::hash::{fast_map_with_capacity, FastMap, FastSet};
use crate::schema::Schema;
use crate::tuple::{self, Tuple};
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// Owned-or-shared tuple map (see the module docs on snapshot sharing).
#[derive(Clone, Debug)]
enum MapRepr {
    Owned(FastMap<Tuple, f64>),
    Shared(Arc<FastMap<Tuple, f64>>),
}

impl Default for MapRepr {
    fn default() -> Self {
        MapRepr::Owned(FastMap::default())
    }
}

impl MapRepr {
    #[inline]
    fn map(&self) -> &FastMap<Tuple, f64> {
        match self {
            MapRepr::Owned(m) => m,
            MapRepr::Shared(a) => a,
        }
    }

    /// Mutable access, copying a shared map out to an owned one first.
    #[inline]
    fn make_owned(&mut self) -> &mut FastMap<Tuple, f64> {
        if let MapRepr::Shared(a) = self {
            *self = MapRepr::Owned((**a).clone());
        }
        match self {
            MapRepr::Owned(m) => m,
            MapRepr::Shared(_) => unreachable!("converted to owned above"),
        }
    }
}

/// A generalized multiset relation: a finite map from tuples to `f64` multiplicities.
///
/// Keys are [`Tuple`]s (inline up to arity `INLINE_CAP` (3)) in a [`FastMap`], so single-tuple
/// updates and probes are one cheap hash away and never clone key vectors. Snapshot
/// GMRs ([`Gmr::from_shared`]) share their map and are O(1) to clone.
#[derive(Clone, Debug, Default)]
pub struct Gmr {
    schema: Schema,
    data: MapRepr,
}

impl Gmr {
    /// An empty GMR with the given schema.
    pub fn new(schema: Schema) -> Self {
        Gmr {
            schema,
            data: MapRepr::default(),
        }
    }

    /// An empty GMR with the given schema and pre-allocated capacity.
    pub fn with_capacity(schema: Schema, capacity: usize) -> Self {
        Gmr {
            schema,
            data: MapRepr::Owned(fast_map_with_capacity(capacity)),
        }
    }

    /// A GMR over an existing shared tuple map (O(1); no copy). This is how the
    /// runtime's view store exposes point-in-time snapshots.
    pub fn from_shared(schema: Schema, data: Arc<FastMap<Tuple, f64>>) -> Self {
        Gmr {
            schema,
            data: MapRepr::Shared(data),
        }
    }

    /// The shared tuple map backing a snapshot GMR, or `None` for an owned
    /// (working) GMR.
    pub fn shared_data(&self) -> Option<&Arc<FastMap<Tuple, f64>>> {
        match &self.data {
            MapRepr::Shared(a) => Some(a),
            MapRepr::Owned(_) => None,
        }
    }

    /// An empty **delta** GMR of the given arity over a positional schema
    /// (`$0, $1, …`): the representation of a batch of updates to one
    /// relation, where insertions contribute `+1`, deletions `−1`, and
    /// same-key contributions collapse by ring addition (exact zeros vanish).
    /// See [`Gmr::merge_delta`] for combining deltas of the same relation.
    pub fn delta(arity: usize) -> Self {
        Gmr::new(Schema::positional(arity))
    }

    /// Ring-add another delta of the same relation into this one (tuple-wise
    /// addition; cancelled keys disappear). Both sides must have the same
    /// arity — deltas of one relation always do. Unlike [`Gmr::add_gmr`] this
    /// matches columns positionally, which is the only meaningful matching
    /// for position-addressed update tuples.
    pub fn merge_delta(&mut self, other: &Gmr) {
        assert_eq!(
            self.schema.arity(),
            other.schema.arity(),
            "cannot merge deltas of arity {} and {}",
            self.schema.arity(),
            other.schema.arity()
        );
        for (t, m) in other.iter() {
            self.add_tuple(t.clone(), m);
        }
    }

    /// The nullary scalar GMR `{<> -> mult}` (the representation of a constant).
    pub fn scalar(mult: f64) -> Self {
        let mut g = Gmr::new(Schema::empty());
        g.add_tuple(tuple::empty(), mult);
        g
    }

    /// A singleton GMR `{t -> mult}`.
    pub fn singleton(schema: Schema, t: impl Into<Tuple>, mult: f64) -> Self {
        let mut g = Gmr::new(schema);
        g.add_tuple(t, mult);
        g
    }

    /// The GMR's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples with non-zero multiplicity.
    pub fn len(&self) -> usize {
        self.data.map().len()
    }

    /// Is the GMR empty (the zero of the ring)?
    pub fn is_empty(&self) -> bool {
        self.data.map().is_empty()
    }

    /// Multiplicity of a tuple (0.0 if absent).
    pub fn get(&self, t: &[Value]) -> f64 {
        self.data.map().get(t).copied().unwrap_or(0.0)
    }

    /// The multiplicity of the empty tuple — the "value" of a scalar GMR.
    pub fn scalar_value(&self) -> f64 {
        self.get(&[])
    }

    /// Iterate over `(tuple, multiplicity)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&Tuple, f64)> {
        self.data.map().iter().map(|(t, &m)| (t, m))
    }

    /// Add `mult` to the multiplicity of `t`, removing the entry if it becomes zero.
    pub fn add_tuple(&mut self, t: impl Into<Tuple>, mult: f64) {
        if mult == 0.0 {
            return;
        }
        let t = t.into();
        debug_assert_eq!(
            t.len(),
            self.schema.arity(),
            "tuple arity {} does not match schema {}",
            t.len(),
            self.schema
        );
        let entry = self.data.make_owned().entry(t);
        match entry {
            std::collections::hash_map::Entry::Occupied(mut o) => {
                let v = o.get_mut();
                *v += mult;
                if *v == 0.0 {
                    o.remove();
                }
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(mult);
            }
        }
    }

    /// Generalized union: tuple-wise addition of multiplicities. The other GMR's columns
    /// must be the same set as this one's (order may differ; tuples are reordered).
    pub fn add_gmr(&mut self, other: &Gmr) {
        if other.is_empty() {
            return;
        }
        assert!(
            self.schema.same_columns(other.schema()) || self.is_empty(),
            "cannot union schemas {} and {}",
            self.schema,
            other.schema
        );
        if self.is_empty() && !self.schema.same_columns(other.schema()) {
            // Adopt the other schema when we are the freshly created zero GMR.
            self.schema = other.schema.clone();
        }
        if self.schema == other.schema {
            for (t, m) in other.iter() {
                self.add_tuple(t.clone(), m);
            }
        } else {
            let positions: Vec<usize> = self
                .schema
                .columns()
                .iter()
                .map(|c| other.schema.index_of(c).expect("checked same columns"))
                .collect();
            for (t, m) in other.iter() {
                self.add_tuple(tuple::project(t, &positions), m);
            }
        }
    }

    /// Multiply every multiplicity by a constant.
    pub fn scale(&mut self, factor: f64) {
        if factor == 0.0 {
            // Never copy a shared map out just to clear it.
            self.data = MapRepr::default();
        } else if factor != 1.0 {
            for m in self.data.make_owned().values_mut() {
                *m *= factor;
            }
        }
    }

    /// The additive inverse `-R` (a "deletion" of R).
    pub fn negate(&self) -> Gmr {
        let mut out = self.clone();
        out.scale(-1.0);
        out
    }

    /// Natural join (the ring multiplication): tuples that agree on shared columns are
    /// concatenated and their multiplicities multiplied.
    pub fn join(&self, other: &Gmr) -> Gmr {
        let out_schema = self.schema.join(&other.schema);
        let shared = self.schema.shared_positions(&other.schema);
        let other_new: Vec<usize> = (0..other.schema.arity())
            .filter(|j| !shared.iter().any(|&(_, oj)| oj == *j))
            .collect();
        let mut out = Gmr::with_capacity(out_schema, self.len().min(other.len()));

        // Probe the smaller side against the larger side via a hash index on the shared
        // columns when there are shared columns; otherwise produce the full product.
        if shared.is_empty() {
            for (lt, lm) in self.iter() {
                for (rt, rm) in other.iter() {
                    let t: Tuple = lt
                        .iter()
                        .cloned()
                        .chain(other_new.iter().map(|&j| rt[j].clone()))
                        .collect();
                    out.add_tuple(t, lm * rm);
                }
            }
            return out;
        }

        let mut index: FastMap<Tuple, Vec<(&Tuple, f64)>> = fast_map_with_capacity(other.len());
        let other_shared: Vec<usize> = shared.iter().map(|&(_, j)| j).collect();
        for (rt, rm) in other.iter() {
            index
                .entry(tuple::project(rt, &other_shared))
                .or_default()
                .push((rt, rm));
        }
        let self_shared: Vec<usize> = shared.iter().map(|&(i, _)| i).collect();
        for (lt, lm) in self.iter() {
            let key = tuple::project(lt, &self_shared);
            if let Some(matches) = index.get(&key) {
                for (rt, rm) in matches {
                    let t: Tuple = lt
                        .iter()
                        .cloned()
                        .chain(other_new.iter().map(|&j| rt[j].clone()))
                        .collect();
                    out.add_tuple(t, lm * rm);
                }
            }
        }
        out
    }

    /// Group-by summation `Sum_A(Q)`: project onto `group_by` columns and sum the
    /// multiplicities of tuples that project to the same group.
    pub fn agg_sum(&self, group_by: &[String]) -> Gmr {
        let positions = self
            .schema
            .positions_of(group_by)
            .unwrap_or_else(|| panic!("group-by columns {group_by:?} not in {}", self.schema));
        let mut out = Gmr::with_capacity(Schema::new(group_by.iter().cloned()), self.len());
        for (t, m) in self.iter() {
            out.add_tuple(tuple::project(t, &positions), m);
        }
        out
    }

    /// Filter tuples by a predicate on (tuple, multiplicity).
    pub fn filter(&self, mut pred: impl FnMut(&[Value], f64) -> bool) -> Gmr {
        let mut out = Gmr::new(self.schema.clone());
        for (t, m) in self.iter() {
            if pred(t, m) {
                out.add_tuple(t.clone(), m);
            }
        }
        out
    }

    /// Map every multiplicity through a function (e.g. `Exists`: non-zero → 1).
    pub fn map_multiplicities(&self, mut f: impl FnMut(f64) -> f64) -> Gmr {
        let mut out = Gmr::new(self.schema.clone());
        for (t, m) in self.iter() {
            out.add_tuple(t.clone(), f(m));
        }
        out
    }

    /// Remove entries whose absolute multiplicity is below `eps`
    /// (used to clean up floating-point residue in long-running streams).
    pub fn prune(&mut self, eps: f64) {
        self.data.make_owned().retain(|_, m| m.abs() > eps);
    }

    /// Total number of heap bytes used by this GMR (approximate; used for the memory
    /// traces of Figures 8–10). Inline tuples cost only their map slot; spilled
    /// tuples add their shared value slab (counted once — slabs are not shared
    /// between entries in practice).
    pub fn approx_bytes(&self) -> usize {
        let per_value = std::mem::size_of::<Value>();
        let per_entry = std::mem::size_of::<Tuple>() + std::mem::size_of::<f64>() + 16;
        self.data
            .map()
            .keys()
            .map(|t| {
                per_entry
                    + if t.is_inline() {
                        0
                    } else {
                        t.len() * per_value + 16
                    }
            })
            .sum()
    }

    /// Reorder the columns of this GMR to the given schema (must be the same column set).
    pub fn reorder(&self, target: &Schema) -> Gmr {
        assert!(
            self.schema.same_columns(target),
            "schema mismatch in reorder"
        );
        if &self.schema == target {
            return self.clone();
        }
        let positions: Vec<usize> = target
            .columns()
            .iter()
            .map(|c| self.schema.index_of(c).unwrap())
            .collect();
        let mut out = Gmr::with_capacity(target.clone(), self.len());
        for (t, m) in self.iter() {
            out.add_tuple(tuple::project(t, &positions), m);
        }
        out
    }

    /// Structural equality: same column set and same tuple→multiplicity mapping
    /// (up to column reordering and a small numeric tolerance).
    pub fn equivalent(&self, other: &Gmr, eps: f64) -> bool {
        if !self.schema.same_columns(&other.schema) {
            return self.is_empty() && other.is_empty();
        }
        // Reorder once when the column orders differ; borrow otherwise.
        let reordered;
        let other = if self.schema == other.schema {
            other
        } else {
            reordered = other.reorder(&self.schema);
            &reordered
        };
        // A length mismatch is not conclusive: entries may still agree within
        // eps of zero, so always do the full symmetric check.
        let mut keys: FastSet<&Tuple> = self.data.map().keys().collect();
        keys.extend(other.data.map().keys());
        keys.iter()
            .all(|k| (self.get(k) - other.get(k)).abs() <= eps)
    }
}

impl fmt::Display for Gmr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "GMR{} {{", self.schema)?;
        let mut rows: Vec<String> = self
            .iter()
            .map(|(t, m)| {
                let vals: Vec<String> = t.iter().map(|v| v.to_string()).collect();
                format!("  <{}> -> {}", vals.join(", "), m)
            })
            .collect();
        rows.sort();
        for r in rows {
            writeln!(f, "{r}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(cols: &[&str], rows: &[(&[i64], f64)]) -> Gmr {
        let mut g = Gmr::new(Schema::new(cols.iter().copied()));
        for (vals, m) in rows {
            let t: Tuple = vals.iter().map(|&v| Value::long(v)).collect();
            g.add_tuple(t, *m);
        }
        g
    }

    #[test]
    fn add_tuple_cancels_to_zero() {
        let mut g = Gmr::new(Schema::new(["a"]));
        g.add_tuple(vec![Value::long(1)], 2.0);
        g.add_tuple(vec![Value::long(1)], -2.0);
        assert!(g.is_empty());
    }

    #[test]
    fn union_is_tuplewise_addition() {
        let mut r = rel(&["a"], &[(&[1], 1.0), (&[2], 3.0)]);
        let s = rel(&["a"], &[(&[2], -1.0), (&[3], 5.0)]);
        r.add_gmr(&s);
        assert_eq!(r.get(&[Value::long(1)]), 1.0);
        assert_eq!(r.get(&[Value::long(2)]), 2.0);
        assert_eq!(r.get(&[Value::long(3)]), 5.0);
    }

    #[test]
    fn union_reorders_columns() {
        let mut r = rel(&["a", "b"], &[(&[1, 2], 1.0)]);
        let s = rel(&["b", "a"], &[(&[2, 1], 1.0)]);
        r.add_gmr(&s);
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(&[Value::long(1), Value::long(2)]), 2.0);
    }

    #[test]
    fn join_on_shared_column() {
        let r = rel(&["a", "b"], &[(&[1, 2], 2.0), (&[3, 5], 1.0)]);
        let s = rel(&["b", "c"], &[(&[2, 7], 3.0), (&[9, 9], 1.0)]);
        let j = r.join(&s);
        assert_eq!(j.schema().columns(), &["a", "b", "c"]);
        assert_eq!(j.len(), 1);
        assert_eq!(
            j.get(&[Value::long(1), Value::long(2), Value::long(7)]),
            6.0
        );
    }

    #[test]
    fn join_without_shared_columns_is_cross_product() {
        let r = rel(&["a"], &[(&[1], 1.0), (&[2], 1.0)]);
        let s = rel(&["b"], &[(&[10], 2.0)]);
        let j = r.join(&s);
        assert_eq!(j.len(), 2);
        assert_eq!(j.get(&[Value::long(1), Value::long(10)]), 2.0);
    }

    #[test]
    fn scalar_joins_scale() {
        let r = rel(&["a"], &[(&[1], 2.0)]);
        let c = Gmr::scalar(-1.0);
        let j = r.join(&c);
        assert_eq!(j.get(&[Value::long(1)]), -2.0);
        assert_eq!(j.schema().columns(), &["a"]);
    }

    #[test]
    fn agg_sum_projects_and_sums() {
        let r = rel(
            &["a", "b"],
            &[(&[1, 2], 7.0), (&[4, 2], 1.0), (&[3, 5], 2.0)],
        );
        let g = r.agg_sum(&["b".to_string()]);
        assert_eq!(g.get(&[Value::long(2)]), 8.0);
        assert_eq!(g.get(&[Value::long(5)]), 2.0);
        // Nullary aggregation gives the grand total.
        let total = r.agg_sum(&[]);
        assert_eq!(total.scalar_value(), 10.0);
    }

    #[test]
    fn negate_and_equivalent() {
        let r = rel(&["a"], &[(&[1], 2.0)]);
        let n = r.negate();
        assert_eq!(n.get(&[Value::long(1)]), -2.0);
        let mut z = r.clone();
        z.add_gmr(&n);
        assert!(z.is_empty());
        assert!(r.equivalent(&r.reorder(&Schema::new(["a"])), 0.0));
        assert!(!r.equivalent(&n, 0.0));
    }

    #[test]
    fn equivalent_ignores_column_order() {
        let r = rel(&["a", "b"], &[(&[1, 2], 1.0)]);
        let s = rel(&["b", "a"], &[(&[2, 1], 1.0)]);
        assert!(r.equivalent(&s, 0.0));
    }

    #[test]
    fn shared_snapshots_are_immutable_under_cow_mutation() {
        let owned = rel(&["a"], &[(&[1], 1.0), (&[2], 2.0)]);
        assert!(owned.shared_data().is_none(), "working GMRs are owned");
        let arc = Arc::new(owned.iter().map(|(t, m)| (t.clone(), m)).collect());
        let mut g = Gmr::from_shared(owned.schema().clone(), arc);
        let snapshot = g.clone(); // O(1): shares the Arc'd map
        assert!(Arc::ptr_eq(
            g.shared_data().unwrap(),
            snapshot.shared_data().unwrap()
        ));
        g.add_tuple(vec![Value::long(3)], 5.0);
        g.add_tuple(vec![Value::long(1)], -1.0);
        // The snapshot still sees the old state; the mutated GMR copied out.
        assert_eq!(snapshot.len(), 2);
        assert_eq!(snapshot.get(&[Value::long(1)]), 1.0);
        assert_eq!(g.get(&[Value::long(1)]), 0.0);
        assert_eq!(g.get(&[Value::long(3)]), 5.0);
        assert!(g.shared_data().is_none(), "mutation copies out to owned");
    }

    #[test]
    fn approx_bytes_grows_with_contents() {
        let empty = Gmr::new(Schema::new(["a"]));
        let full = rel(&["a"], &[(&[1], 1.0), (&[2], 1.0)]);
        assert!(full.approx_bytes() > empty.approx_bytes());
    }
}
