//! Schemas: ordered lists of column (variable) names.
//!
//! In AGCA the columns of a GMR are query variables; a schema is therefore an ordered
//! list of variable names. Schemas are small (a handful of columns), so lookups are
//! linear scans — cheaper than a hash map at these sizes and free of allocation.
//!
//! The column list is stored behind an `Arc`, making `Schema::clone` a refcount bump:
//! the evaluator clones schemas on every product step and every GMR construction, so
//! this matters on the per-event path. Schemas are immutable after construction except
//! for [`Schema::push`], which copies (it only runs at compile time).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// An ordered list of column names.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub struct Schema {
    columns: Arc<[String]>,
}

impl Schema {
    /// Build a schema from column names.
    pub fn new<I, S>(columns: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Schema {
            columns: columns
                .into_iter()
                .map(Into::into)
                .collect::<Vec<String>>()
                .into(),
        }
    }

    /// The empty (nullary) schema of scalar GMRs.
    pub fn empty() -> Self {
        Schema::default()
    }

    /// A positional schema `$0, $1, …, $(arity-1)` for GMRs whose columns have
    /// no meaningful names — e.g. the per-relation delta GMRs of a batch,
    /// where tuples are addressed by position like the update events they came
    /// from. Small arities are served from a static cache so building a delta
    /// costs no allocation in steady state.
    pub fn positional(arity: usize) -> Self {
        use std::sync::OnceLock;
        const CACHED: usize = 17;
        static CACHE: OnceLock<Vec<Schema>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| {
            (0..CACHED)
                .map(|n| Schema::new((0..n).map(|i| format!("${i}"))))
                .collect()
        });
        match cache.get(arity) {
            Some(s) => s.clone(),
            None => Schema::new((0..arity).map(|i| format!("${i}"))),
        }
    }

    /// Column names in order.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Is this the nullary schema?
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Position of a column, if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }

    /// Does the schema contain the column?
    pub fn contains(&self, name: &str) -> bool {
        self.index_of(name).is_some()
    }

    /// Positions of the given columns; returns `None` if any is missing.
    pub fn positions_of(&self, names: &[String]) -> Option<Vec<usize>> {
        names.iter().map(|n| self.index_of(n)).collect()
    }

    /// Columns shared with another schema, as (self position, other position) pairs.
    pub fn shared_positions(&self, other: &Schema) -> Vec<(usize, usize)> {
        self.columns
            .iter()
            .enumerate()
            .filter_map(|(i, c)| other.index_of(c).map(|j| (i, j)))
            .collect()
    }

    /// Schema of the natural join `self * other`: self's columns followed by other's
    /// columns that are not already present.
    pub fn join(&self, other: &Schema) -> Schema {
        if other.is_empty() {
            return self.clone();
        }
        let mut columns = self.columns.to_vec();
        for c in other.columns.iter() {
            if !columns.iter().any(|x| x == c) {
                columns.push(c.clone());
            }
        }
        Schema {
            columns: columns.into(),
        }
    }

    /// Do the two schemas contain the same column set (ignoring order)?
    pub fn same_columns(&self, other: &Schema) -> bool {
        self.arity() == other.arity() && self.columns.iter().all(|c| other.contains(c))
    }

    /// Append a column (panics if already present — schemas never repeat columns).
    pub fn push(&mut self, name: impl Into<String>) {
        let name = name.into();
        assert!(!self.contains(&name), "duplicate column {name}");
        let mut columns = self.columns.to_vec();
        columns.push(name);
        self.columns = columns.into();
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.columns.join(", "))
    }
}

impl<S: Into<String>> FromIterator<S> for Schema {
    fn from_iter<T: IntoIterator<Item = S>>(iter: T) -> Self {
        Schema::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_lookup() {
        let s = Schema::new(["a", "b", "c"]);
        assert_eq!(s.arity(), 3);
        assert_eq!(s.index_of("b"), Some(1));
        assert_eq!(s.index_of("z"), None);
        assert!(s.contains("c"));
        assert_eq!(s.positions_of(&["c".into(), "a".into()]), Some(vec![2, 0]));
        assert_eq!(s.positions_of(&["c".into(), "z".into()]), None);
    }

    #[test]
    fn join_schema_unions_in_order() {
        let r = Schema::new(["a", "b"]);
        let s = Schema::new(["b", "c"]);
        assert_eq!(r.join(&s), Schema::new(["a", "b", "c"]));
        assert_eq!(r.shared_positions(&s), vec![(1, 0)]);
    }

    #[test]
    fn same_columns_ignores_order() {
        let r = Schema::new(["a", "b"]);
        let s = Schema::new(["b", "a"]);
        let t = Schema::new(["b", "c"]);
        assert!(r.same_columns(&s));
        assert!(!r.same_columns(&t));
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn push_rejects_duplicates() {
        let mut s = Schema::new(["a"]);
        s.push("a");
    }

    #[test]
    fn display_and_empty() {
        assert_eq!(format!("{}", Schema::new(["x", "y"])), "[x, y]");
        assert!(Schema::empty().is_empty());
        assert_eq!(Schema::empty().arity(), 0);
    }
}
