//! Fast hashing for the hot-path maps.
//!
//! Every per-event operation of the runtime ends in a hash-map probe: view-map
//! updates, secondary-index lookups and GMR ring operations. The std
//! `RandomState` (SipHash-1-3) is DoS-resistant but costs tens of cycles per
//! key; the keys here are short tuples of in-process values, so the engine
//! uses an FxHash-style multiply-xor hasher instead (the same design rustc
//! uses for its interning tables). [`FastMap`] / [`FastSet`] are the
//! workspace-wide aliases; all gmr/agca/runtime/compiler maps on the per-event
//! path use them.
//!
//! The hasher is deterministic (no per-process seed), which also makes
//! benchmark runs and test failures reproducible.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// An FxHash-style hasher: one rotate + xor + multiply per 8-byte word.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

/// 2^64 / phi, the classic Fibonacci-hashing multiplier.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // Finalizer (murmur-style): the word loop ends in a multiply, which
        // concentrates entropy in the high bits, while hash tables index
        // buckets with the low bits — and the dominant key material here is
        // `f64` bit patterns (see `Value::numeric_bits`), whose own low bits
        // are mostly zero for integral values. Two xor-shift + multiply
        // rounds spread the entropy across all 64 bits.
        let mut h = self.hash;
        h ^= h >> 32;
        h = h.wrapping_mul(0xd6e8_feb8_6659_fd93);
        h ^= h >> 32;
        h
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        self.add_to_hash(v as u64);
        self.add_to_hash((v >> 64) as u64);
    }
}

/// The hasher-builder used by [`FastMap`] / [`FastSet`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` with the fast deterministic hasher. Construct with
/// `FastMap::default()` or [`fast_map_with_capacity`].
pub type FastMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` with the fast deterministic hasher.
pub type FastSet<K> = HashSet<K, FxBuildHasher>;

/// `FastMap` equivalent of `HashMap::with_capacity`.
#[inline]
pub fn fast_map_with_capacity<K, V>(capacity: usize) -> FastMap<K, V> {
    FastMap::with_capacity_and_hasher(capacity, FxBuildHasher::default())
}

/// `FastSet` equivalent of `HashSet::with_capacity`.
#[inline]
pub fn fast_set_with_capacity<K>(capacity: usize) -> FastSet<K> {
    FastSet::with_capacity_and_hasher(capacity, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_ne!(hash_of(&42u64), hash_of(&43u64));
        assert_ne!(hash_of(&"abc"), hash_of(&"abd"));
        // Not a constant function on multi-word input.
        assert_ne!(hash_of(&[1u64, 2u64]), hash_of(&[2u64, 1u64]));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FastMap<String, i32> = FastMap::default();
        m.insert("a".into(), 1);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FastSet<u64> = fast_set_with_capacity(4);
        s.insert(7);
        assert!(s.contains(&7));
    }
}
