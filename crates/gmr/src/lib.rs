//! # Generalized Multiset Relations (GMRs)
//!
//! This crate provides the data model underlying the DBToaster reproduction:
//! *generalized multiset relations* as defined in Section 3.1 of the paper
//! "DBToaster: Higher-order Delta Processing for Dynamic, Frequently Fresh Views".
//!
//! A GMR is a function from tuples to rational multiplicities that is non-zero on at
//! most finitely many tuples. GMRs generalize SQL's multiset relations in two ways:
//!
//! * multiplicities may be **negative** — a deletion is simply a GMR with negative
//!   multiplicities, and applying an update means *adding* it to the database;
//! * multiplicities may be **fractional** — aggregate values live in the multiplicity,
//!   so maintaining an aggregate means adding to a number instead of replacing a tuple.
//!
//! Together with generalized union (`+`, [`Gmr::add_gmr`]) and natural join
//! (`*`, [`Gmr::join`]) GMRs form a ring, which is what makes the delta transform of
//! AGCA expressions (implemented in the `dbtoaster-agca` crate) a purely syntactic
//! rewrite.
//!
//! ## Contents
//!
//! * [`value`] — the dynamically typed [`Value`] scalar (64-bit integers,
//!   doubles and interned strings) with the coercion rules used throughout the system.
//! * [`mod@tuple`] — the shared [`Tuple`] key type (inline up to arity `INLINE_CAP` (3),
//!   cheap to clone) plus helpers for projection and concatenation.
//! * [`hash`] — the fast deterministic hasher behind [`FastMap`], used
//!   by every hot-path map in the system.
//! * [`schema`] — ordered column-name lists and positional lookup.
//! * [`mod@gmr`] — the [`Gmr`] collection type and its ring operations.
//! * [`rational`] — an exact rational number type used by the algebraic property tests
//!   (runtime multiplicities are `f64` for performance; see DESIGN.md).
//!
//! ## Example
//!
//! ```
//! use dbtoaster_gmr::prelude::*;
//!
//! // R(A, B) with two tuples.
//! let mut r = Gmr::new(Schema::new(["A", "B"]));
//! r.add_tuple(vec![Value::long(1), Value::long(2)], 1.0);
//! r.add_tuple(vec![Value::long(3), Value::long(5)], 1.0);
//!
//! // S(B, C) with one tuple.
//! let mut s = Gmr::new(Schema::new(["B", "C"]));
//! s.add_tuple(vec![Value::long(2), Value::long(7)], 1.0);
//!
//! // Natural join on the shared column B.
//! let j = r.join(&s);
//! assert_eq!(j.schema().columns(), &["A", "B", "C"]);
//! assert_eq!(j.len(), 1);
//! ```

pub mod gmr;
pub mod hash;
pub mod rational;
pub mod schema;
pub mod tuple;
pub mod value;

pub use gmr::Gmr;
pub use hash::{FastMap, FastSet, FxBuildHasher, FxHasher};
pub use rational::Rational;
pub use schema::Schema;
pub use tuple::Tuple;
pub use value::Value;

/// Convenience re-exports for downstream crates.
pub mod prelude {
    pub use crate::gmr::Gmr;
    pub use crate::hash::{FastMap, FastSet};
    pub use crate::rational::Rational;
    pub use crate::schema::Schema;
    pub use crate::tuple::Tuple;
    pub use crate::value::Value;
}
