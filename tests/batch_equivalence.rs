//! Batch-partition equivalence: the batch-first processing spine must be a
//! pure refactoring of event-at-a-time processing.
//!
//! Property: for any event stream and **any** partition of it into delta
//! batches, `Engine::process_batch` over the partition produces final view
//! maps **bit-exactly** equal to `Engine::process` over the events one at a
//! time — in all four compile modes, on the compiled-kernel path and with the
//! interpreter forced, and under every forced batch strategy (the batch-delta
//! default, the pre-batch-delta statement-major dispatch, and the entry-major
//! oracle). Streams are integer-weighted (all arithmetic exact in f64), which
//! is exactly the regime where the ring-linearity argument of
//! `dbtoaster_agca::batch` promises bit equality; duplicate keys and
//! insert/delete cancellations inside one batch are generated on purpose.
//!
//! The query set spans all three batch strategies: linear aggregates and
//! group-bys (batch-delta with empty corrections, statement-major when
//! batch-delta is disabled), a quadratic self-join whose intra-batch
//! interaction is carried by the derived pair correction, and a stream-scaled
//! self-join whose second delta keeps a live stream atom, defeating the
//! derivation (entry-major fallback), plus a nested-aggregate shape.

use dbtoaster::agca::{CmpOp, DeltaBatch, Expr, UpdateEvent};
use dbtoaster::compiler::{
    compile, BatchStrategy, Catalog, CompileMode, CompileOptions, QuerySpec, RelationMeta,
};
use dbtoaster::gmr::Value;
use dbtoaster::runtime::Engine;
use proptest::prelude::*;

fn catalog() -> Catalog {
    [
        RelationMeta::stream("R", ["A", "B"]),
        RelationMeta::stream("S", ["B", "C"]),
    ]
    .into_iter()
    .collect()
}

/// The query shapes under test (see module docs).
fn queries() -> Vec<QuerySpec> {
    vec![
        // Linear scalar join aggregate (batch-delta in HO mode).
        QuerySpec {
            name: "TOTAL".into(),
            out_vars: vec![],
            expr: Expr::agg_sum(
                Vec::<String>::new(),
                Expr::product_of([
                    Expr::rel("R", ["a", "b"]),
                    Expr::rel("S", ["b", "c"]),
                    Expr::var("c"),
                ]),
            ),
        },
        // Group-by with a comparison filter.
        QuerySpec {
            name: "PER_B".into(),
            out_vars: vec!["b".into()],
            expr: Expr::agg_sum(
                ["b"],
                Expr::product_of([
                    Expr::rel("R", ["a", "b"]),
                    Expr::cmp(CmpOp::Le, Expr::var("a"), Expr::var("b")),
                    Expr::var("a"),
                ]),
            ),
        },
        // Self-join: quadratic in R. The pair correction (second delta) covers
        // intra-batch interaction exactly, so this is batch-delta eligible —
        // the query the second-order derivation exists for.
        QuerySpec {
            name: "SELFJ".into(),
            out_vars: vec![],
            expr: Expr::agg_sum(
                Vec::<String>::new(),
                Expr::product_of([Expr::rel("R", ["a", "b"]), Expr::rel("R", ["a2", "b"])]),
            ),
        },
        // Self-join scaled by a second stream: quadratic in R, and the second
        // delta w.r.t. R keeps a live S atom — a *stream*, not a static
        // table. S is constant during an R-run (runs are per-relation), so
        // the pair correction reads S's stored pre-run slice and the
        // derivation still succeeds: batch-delta, with a correction that
        // joins the run's delta pseudo-relations against stored S.
        QuerySpec {
            name: "SCALED".into(),
            out_vars: vec![],
            expr: Expr::agg_sum(
                Vec::<String>::new(),
                Expr::product_of([
                    Expr::rel("R", ["a", "b"]),
                    Expr::rel("R", ["a2", "b"]),
                    Expr::rel("S", ["b", "c"]),
                ]),
            ),
        },
    ]
}

/// A nested-aggregate query (compiled separately: its re-evaluation statements
/// exercise the once-per-run `:=` phase).
fn nested_query() -> QuerySpec {
    let inner = Expr::agg_sum(
        Vec::<String>::new(),
        Expr::product_of([Expr::rel("S", ["b2", "c"]), Expr::var("c")]),
    );
    QuerySpec {
        name: "NESTED".into(),
        out_vars: vec![],
        expr: Expr::agg_sum(
            Vec::<String>::new(),
            Expr::product_of([
                Expr::rel("R", ["a", "b"]),
                Expr::lift("z", inner),
                Expr::cmp(CmpOp::Lt, Expr::var("b"), Expr::var("z")),
            ]),
        ),
    }
}

/// Deterministic stream generator: inserts and deletes over small integer
/// domains, with deletes drawn from the live multiset so multiplicities never
/// go negative and same-key cancellations are common.
fn random_stream(seed: u64, len: usize) -> Vec<UpdateEvent> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next = move |bound: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % bound
    };
    let mut live_r: Vec<Vec<Value>> = Vec::new();
    let mut live_s: Vec<Vec<Value>> = Vec::new();
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let relation_r = next(2) == 0;
        let (live, rel, arity) = if relation_r {
            (&mut live_r, "R", 2)
        } else {
            (&mut live_s, "S", 2)
        };
        let delete = !live.is_empty() && next(100) < 35;
        if delete {
            let i = next(live.len() as u64) as usize;
            let tuple = live.swap_remove(i);
            out.push(UpdateEvent::delete(rel, tuple));
        } else {
            let tuple: Vec<Value> = (0..arity).map(|_| Value::long(next(6) as i64)).collect();
            live.push(tuple.clone());
            out.push(UpdateEvent::insert(rel, tuple));
        }
    }
    out
}

/// Split a stream into batches at random boundaries (possibly one big batch,
/// possibly all singletons).
fn random_partition(events: &[UpdateEvent], seed: u64) -> Vec<DeltaBatch> {
    let mut state = seed.wrapping_mul(0xd1342543de82ef95).wrapping_add(7);
    let mut next = move |bound: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % bound
    };
    let style = next(3);
    let mut batches = Vec::new();
    let mut current = DeltaBatch::new();
    for (i, e) in events.iter().enumerate() {
        current.push(e);
        let cut = match style {
            0 => next(4) == 0,               // geometric, mean ~4
            1 => (i + 1).is_multiple_of(64), // fixed 64
            _ => next(100) < 2,              // huge batches
        };
        if cut {
            batches.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        batches.push(current);
    }
    batches
}

/// Every maintained map (views + stored relations) of `a` must equal `b`'s,
/// bit for bit.
fn assert_engines_identical(a: &Engine, b: &Engine, ctx: &str) {
    let mut names: Vec<String> = a.program().maps.iter().map(|m| m.name.clone()).collect();
    names.extend(a.program().stored_relations.iter().cloned());
    names.extend(a.program().static_tables.iter().cloned());
    assert!(!names.is_empty(), "{ctx}: no maps to compare");
    for name in names {
        let (va, vb) = (a.view(&name), b.view(&name));
        match (va, vb) {
            (Some(ga), Some(gb)) => assert!(
                ga.equivalent(&gb, 0.0),
                "{ctx}: view {name} diverges\nper-event:\n{ga}\nbatched:\n{gb}"
            ),
            (None, None) => {}
            _ => panic!("{ctx}: view {name} present in only one engine"),
        }
    }
}

fn check_case(
    specs: &[QuerySpec],
    mode: CompileMode,
    force_interp: bool,
    force_strategy: Option<BatchStrategy>,
    seed: u64,
) {
    check_case_n(specs, mode, force_interp, force_strategy, seed, 300);
}

fn check_case_n(
    specs: &[QuerySpec],
    mode: CompileMode,
    force_interp: bool,
    force_strategy: Option<BatchStrategy>,
    seed: u64,
    len: usize,
) {
    let program = compile(specs, &catalog(), &CompileOptions::for_mode(mode))
        .unwrap_or_else(|e| panic!("compile [{mode}]: {e}"));
    let events = random_stream(seed, len);
    let batches = random_partition(&events, seed ^ 0xabcdef);

    let mut reference = Engine::new(program.clone(), &catalog());
    reference.set_force_interpreter(force_interp);
    reference
        .process_all(&events)
        .unwrap_or_else(|e| panic!("per-event [{mode}]: {e}"));

    let mut batched = Engine::new(program, &catalog());
    batched.set_force_interpreter(force_interp);
    batched.set_force_batch_strategy(force_strategy);
    let mut covered = 0u64;
    for b in &batches {
        let report = batched.process_batch(b);
        assert!(
            report.first_error.is_none(),
            "batched [{mode}]: {:?}",
            report.first_error
        );
        covered += report.events;
    }
    assert_eq!(covered, events.len() as u64);
    assert_eq!(batched.stats().events, reference.stats().events);

    // Forcing must actually disable the disallowed strategies.
    let stats = batched.stats();
    match force_strategy {
        Some(BatchStrategy::EntryMajor) => {
            assert_eq!(stats.batch_delta_runs, 0, "[{mode}] forced entry-major");
            assert_eq!(stats.statement_major_runs, 0, "[{mode}] forced entry-major");
        }
        Some(BatchStrategy::StatementMajor) => {
            assert_eq!(stats.batch_delta_runs, 0, "[{mode}] batch-delta disabled");
        }
        Some(BatchStrategy::BatchDelta) | None => {}
    }

    let path = if force_interp { "interp" } else { "compiled" };
    let strat = force_strategy.map_or("auto", |s| s.as_str());
    assert_engines_identical(
        &reference,
        &batched,
        &format!("seed {seed} [{mode}/{path}/{strat}]"),
    );
}

/// Guard the suite's own premise: the HO-compiled query set must exercise
/// batch-delta (including the stream-scaled self-join, whose correction reads
/// a surviving stream atom), the entry-major fallback must still exist for
/// genuinely ineligible shapes, and disabling batch-delta must reveal the
/// legacy statement-major dispatch.
#[test]
fn query_set_spans_all_batch_strategies() {
    let program = compile(
        &queries(),
        &catalog(),
        &CompileOptions::for_mode(CompileMode::HigherOrder),
    )
    .unwrap();
    let dispatch = program.batch_dispatch();
    assert!(
        dispatch
            .iter()
            .any(|d| d.strategy == BatchStrategy::BatchDelta),
        "linear queries should derive batch-delta corrections somewhere: {dispatch:?}"
    );
    assert!(
        dispatch
            .iter()
            .all(|d| d.strategy == BatchStrategy::BatchDelta),
        "the stream-scaled self-join's surviving S atom now reads stored \
         pre-run state, so every relation here is batch-delta: {dispatch:?}"
    );
    // A cubic self-join has a nonzero *third* delta — permanently ineligible
    // for the second-order correction, so entry-major survives as the exact
    // fallback. (Compiled only: the cubic per-event path is a known latent
    // bug, see ROADMAP residue (c).)
    let cubic = compile(
        &[QuerySpec {
            name: "CUBIC".into(),
            out_vars: vec![],
            expr: Expr::agg_sum(
                Vec::<String>::new(),
                Expr::product_of([
                    Expr::rel("R", ["a", "b"]),
                    Expr::rel("R", ["a2", "b"]),
                    Expr::rel("R", ["a3", "b"]),
                ]),
            ),
        }],
        &catalog(),
        &CompileOptions::for_mode(CompileMode::HigherOrder),
    )
    .unwrap();
    assert!(
        cubic
            .batch_dispatch()
            .iter()
            .any(|d| d.strategy == BatchStrategy::EntryMajor),
        "a cubic self-join must keep the entry-major fallback: {:?}",
        cubic.batch_dispatch()
    );
    // Forcing statement-major recovers the pre-batch-delta dispatch.
    let legacy = program.batch_dispatch_forced(Some(BatchStrategy::StatementMajor));
    assert!(
        legacy
            .iter()
            .all(|d| d.strategy != BatchStrategy::BatchDelta),
        "forced statement-major must disable batch-delta: {legacy:?}"
    );
    assert!(
        legacy
            .iter()
            .any(|d| d.strategy == BatchStrategy::StatementMajor),
        "linear queries should allow statement-major somewhere: {legacy:?}"
    );
    // Forcing entry-major is the oracle: everything entry-major.
    let oracle = program.batch_dispatch_forced(Some(BatchStrategy::EntryMajor));
    assert!(
        oracle
            .iter()
            .all(|d| d.strategy == BatchStrategy::EntryMajor),
        "forced entry-major must cover every relation: {oracle:?}"
    );
}

/// Coverage guard for the batch benchmark sweep: every query it measures must
/// dispatch batch-delta on all of its stream relations in higher-order mode —
/// if one regresses to a fallback strategy, the sweep silently stops
/// measuring the second-order path. (Other workload queries — e.g. the
/// EXISTS-correlated TPC-H q4 — legitimately stay on the fallbacks.)
#[test]
fn batch_sweep_queries_dispatch_batch_delta() {
    use dbtoaster::prelude::*;
    for name in ["q1", "q3", "q6", "axf", "bsv"] {
        let q = dbtoaster::workloads::query(name).unwrap();
        let engine = QueryEngineBuilder::new(dbtoaster::workloads::full_catalog())
            .add_query(q.name, q.sql)
            .mode(CompileMode::HigherOrder)
            .build()
            .unwrap_or_else(|e| panic!("compile workload {}: {e}", q.name));
        let dispatch = engine.program().batch_dispatch();
        assert!(!dispatch.is_empty(), "{}: no stream relations", q.name);
        for d in &dispatch {
            assert_eq!(
                d.strategy,
                BatchStrategy::BatchDelta,
                "workload {} relation {} lost batch-delta dispatch",
                q.name,
                d.relation
            );
        }
    }
}

/// Regression twin of the trigger-variable-capture tests in
/// `plan_equivalence.rs`: self-join chains whose auxiliary maps are keyed by
/// trigger variables (the alpha-renamed `{map}@@k{i}` columns). The R×R×R
/// cubic chain used to panic at compile time and the R·S·R path chain used to
/// diverge; here they must additionally stay bit-exact under every batch
/// partition and every forced batch strategy. Streams are short — the cubic
/// query is cubic in |R| and runs under Reevaluate + interpreter too.
fn chain_queries() -> Vec<QuerySpec> {
    vec![
        QuerySpec {
            name: "PATH".into(),
            out_vars: vec![],
            expr: Expr::agg_sum(
                Vec::<String>::new(),
                Expr::product_of([
                    Expr::rel("R", ["a", "b"]),
                    Expr::rel("S", ["b", "c"]),
                    Expr::rel("R", ["c", "d"]),
                ]),
            ),
        },
        QuerySpec {
            name: "CUBIC".into(),
            out_vars: vec![],
            expr: Expr::agg_sum(
                Vec::<String>::new(),
                Expr::product_of([
                    Expr::rel("R", ["a", "b"]),
                    Expr::rel("R", ["b", "c"]),
                    Expr::rel("R", ["c", "d"]),
                ]),
            ),
        },
    ]
}

#[test]
fn trigger_variable_chains_batch_bit_exact_all_modes() {
    for mode in [
        CompileMode::HigherOrder,
        CompileMode::FirstOrder,
        CompileMode::NaiveViewlet,
        CompileMode::Reevaluate,
    ] {
        for force_interp in [false, true] {
            check_case_n(&chain_queries(), mode, force_interp, None, 7, 80);
        }
    }
}

#[test]
fn trigger_variable_chains_batch_bit_exact_forced_strategies() {
    for force in [
        Some(BatchStrategy::EntryMajor),
        Some(BatchStrategy::StatementMajor),
        Some(BatchStrategy::BatchDelta),
    ] {
        for force_interp in [false, true] {
            check_case_n(
                &chain_queries(),
                CompileMode::HigherOrder,
                force_interp,
                force,
                3,
                80,
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_partitions_are_bit_exact(seed32 in 0u32..1_000_000u32) {
        let seed = seed32 as u64;
        for mode in [
            CompileMode::HigherOrder,
            CompileMode::FirstOrder,
            CompileMode::NaiveViewlet,
            CompileMode::Reevaluate,
        ] {
            for force_interp in [false, true] {
                check_case(&queries(), mode, force_interp, None, seed);
            }
        }
    }

    #[test]
    fn nested_aggregates_random_partitions_are_bit_exact(seed32 in 0u32..1_000_000u32) {
        let seed = seed32 as u64;
        for mode in [
            CompileMode::HigherOrder,
            CompileMode::FirstOrder,
            CompileMode::NaiveViewlet,
            CompileMode::Reevaluate,
        ] {
            for force_interp in [false, true] {
                check_case(std::slice::from_ref(&nested_query()), mode, force_interp, None, seed);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Same property under every forced batch strategy: the entry-major
    /// oracle, the legacy statement-major dispatch, and explicit batch-delta
    /// (which equals the automatic choice) must all stay bit-exact with
    /// per-event processing.
    #[test]
    fn forced_strategies_are_bit_exact(seed32 in 0u32..1_000_000u32) {
        let seed = seed32 as u64;
        for force in [
            Some(BatchStrategy::EntryMajor),
            Some(BatchStrategy::StatementMajor),
            Some(BatchStrategy::BatchDelta),
        ] {
            for mode in [
                CompileMode::HigherOrder,
                CompileMode::FirstOrder,
                CompileMode::NaiveViewlet,
                CompileMode::Reevaluate,
            ] {
                for force_interp in [false, true] {
                    check_case(&queries(), mode, force_interp, force, seed);
                }
            }
        }
    }
}
