//! Batch-partition equivalence: the batch-first processing spine must be a
//! pure refactoring of event-at-a-time processing.
//!
//! Property: for any event stream and **any** partition of it into delta
//! batches, `Engine::process_batch` over the partition produces final view
//! maps **bit-exactly** equal to `Engine::process` over the events one at a
//! time — in all four compile modes, on the compiled-kernel path and with the
//! interpreter forced. Streams are integer-weighted (all arithmetic exact in
//! f64), which is exactly the regime where the ring-linearity argument of
//! `dbtoaster_agca::batch` promises bit equality; duplicate keys and
//! insert/delete cancellations inside one batch are generated on purpose.
//!
//! The query set spans both batch strategies: linear aggregates and group-bys
//! (statement-major) and a self-join whose trigger reads a map it also writes
//! (entry-major fallback), plus a nested-aggregate shape.

use dbtoaster::agca::{CmpOp, DeltaBatch, Expr, UpdateEvent};
use dbtoaster::compiler::{
    compile, BatchStrategy, Catalog, CompileMode, CompileOptions, QuerySpec, RelationMeta,
};
use dbtoaster::gmr::Value;
use dbtoaster::runtime::Engine;
use proptest::prelude::*;

fn catalog() -> Catalog {
    [
        RelationMeta::stream("R", ["A", "B"]),
        RelationMeta::stream("S", ["B", "C"]),
    ]
    .into_iter()
    .collect()
}

/// The query shapes under test (see module docs).
fn queries() -> Vec<QuerySpec> {
    vec![
        // Linear scalar join aggregate (statement-major in HO mode).
        QuerySpec {
            name: "TOTAL".into(),
            out_vars: vec![],
            expr: Expr::agg_sum(
                Vec::<String>::new(),
                Expr::product_of([
                    Expr::rel("R", ["a", "b"]),
                    Expr::rel("S", ["b", "c"]),
                    Expr::var("c"),
                ]),
            ),
        },
        // Group-by with a comparison filter.
        QuerySpec {
            name: "PER_B".into(),
            out_vars: vec!["b".into()],
            expr: Expr::agg_sum(
                ["b"],
                Expr::product_of([
                    Expr::rel("R", ["a", "b"]),
                    Expr::cmp(CmpOp::Le, Expr::var("a"), Expr::var("b")),
                    Expr::var("a"),
                ]),
            ),
        },
        // Self-join: the R-trigger reads the partial-sum map it also writes,
        // forcing the entry-major fallback.
        QuerySpec {
            name: "SELFJ".into(),
            out_vars: vec![],
            expr: Expr::agg_sum(
                Vec::<String>::new(),
                Expr::product_of([Expr::rel("R", ["a", "b"]), Expr::rel("R", ["a2", "b"])]),
            ),
        },
    ]
}

/// A nested-aggregate query (compiled separately: its re-evaluation statements
/// exercise the once-per-run `:=` phase).
fn nested_query() -> QuerySpec {
    let inner = Expr::agg_sum(
        Vec::<String>::new(),
        Expr::product_of([Expr::rel("S", ["b2", "c"]), Expr::var("c")]),
    );
    QuerySpec {
        name: "NESTED".into(),
        out_vars: vec![],
        expr: Expr::agg_sum(
            Vec::<String>::new(),
            Expr::product_of([
                Expr::rel("R", ["a", "b"]),
                Expr::lift("z", inner),
                Expr::cmp(CmpOp::Lt, Expr::var("b"), Expr::var("z")),
            ]),
        ),
    }
}

/// Deterministic stream generator: inserts and deletes over small integer
/// domains, with deletes drawn from the live multiset so multiplicities never
/// go negative and same-key cancellations are common.
fn random_stream(seed: u64, len: usize) -> Vec<UpdateEvent> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next = move |bound: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % bound
    };
    let mut live_r: Vec<Vec<Value>> = Vec::new();
    let mut live_s: Vec<Vec<Value>> = Vec::new();
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let relation_r = next(2) == 0;
        let (live, rel, arity) = if relation_r {
            (&mut live_r, "R", 2)
        } else {
            (&mut live_s, "S", 2)
        };
        let delete = !live.is_empty() && next(100) < 35;
        if delete {
            let i = next(live.len() as u64) as usize;
            let tuple = live.swap_remove(i);
            out.push(UpdateEvent::delete(rel, tuple));
        } else {
            let tuple: Vec<Value> = (0..arity).map(|_| Value::long(next(6) as i64)).collect();
            live.push(tuple.clone());
            out.push(UpdateEvent::insert(rel, tuple));
        }
    }
    out
}

/// Split a stream into batches at random boundaries (possibly one big batch,
/// possibly all singletons).
fn random_partition(events: &[UpdateEvent], seed: u64) -> Vec<DeltaBatch> {
    let mut state = seed.wrapping_mul(0xd1342543de82ef95).wrapping_add(7);
    let mut next = move |bound: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % bound
    };
    let style = next(3);
    let mut batches = Vec::new();
    let mut current = DeltaBatch::new();
    for (i, e) in events.iter().enumerate() {
        current.push(e);
        let cut = match style {
            0 => next(4) == 0,               // geometric, mean ~4
            1 => (i + 1).is_multiple_of(64), // fixed 64
            _ => next(100) < 2,              // huge batches
        };
        if cut {
            batches.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        batches.push(current);
    }
    batches
}

/// Every maintained map (views + stored relations) of `a` must equal `b`'s,
/// bit for bit.
fn assert_engines_identical(a: &Engine, b: &Engine, ctx: &str) {
    let mut names: Vec<String> = a.program().maps.iter().map(|m| m.name.clone()).collect();
    names.extend(a.program().stored_relations.iter().cloned());
    names.extend(a.program().static_tables.iter().cloned());
    assert!(!names.is_empty(), "{ctx}: no maps to compare");
    for name in names {
        let (va, vb) = (a.view(&name), b.view(&name));
        match (va, vb) {
            (Some(ga), Some(gb)) => assert!(
                ga.equivalent(&gb, 0.0),
                "{ctx}: view {name} diverges\nper-event:\n{ga}\nbatched:\n{gb}"
            ),
            (None, None) => {}
            _ => panic!("{ctx}: view {name} present in only one engine"),
        }
    }
}

fn check_case(specs: &[QuerySpec], mode: CompileMode, force_interp: bool, seed: u64) {
    let program = compile(specs, &catalog(), &CompileOptions::for_mode(mode))
        .unwrap_or_else(|e| panic!("compile [{mode}]: {e}"));
    let events = random_stream(seed, 300);
    let batches = random_partition(&events, seed ^ 0xabcdef);

    let mut reference = Engine::new(program.clone(), &catalog());
    reference.set_force_interpreter(force_interp);
    reference
        .process_all(&events)
        .unwrap_or_else(|e| panic!("per-event [{mode}]: {e}"));

    let mut batched = Engine::new(program, &catalog());
    batched.set_force_interpreter(force_interp);
    let mut covered = 0u64;
    for b in &batches {
        let report = batched.process_batch(b);
        assert!(
            report.first_error.is_none(),
            "batched [{mode}]: {:?}",
            report.first_error
        );
        covered += report.events;
    }
    assert_eq!(covered, events.len() as u64);
    assert_eq!(batched.stats().events, reference.stats().events);
    let path = if force_interp { "interp" } else { "compiled" };
    assert_engines_identical(
        &reference,
        &batched,
        &format!("seed {seed} [{mode}/{path}]"),
    );
}

#[test]
fn query_set_spans_both_batch_strategies() {
    // Guard the test's own premise: the HO-compiled query set must exercise
    // statement-major *and* entry-major dispatch.
    let program = compile(
        &queries(),
        &catalog(),
        &CompileOptions::for_mode(CompileMode::HigherOrder),
    )
    .unwrap();
    let dispatch = program.batch_dispatch();
    assert!(
        dispatch
            .iter()
            .any(|d| d.strategy == BatchStrategy::EntryMajor),
        "self-join should force entry-major somewhere: {dispatch:?}"
    );
    assert!(
        dispatch
            .iter()
            .any(|d| d.strategy == BatchStrategy::StatementMajor),
        "linear queries should allow statement-major somewhere: {dispatch:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn random_partitions_are_bit_exact(seed32 in 0u32..1_000_000u32) {
        let seed = seed32 as u64;
        for mode in [
            CompileMode::HigherOrder,
            CompileMode::FirstOrder,
            CompileMode::NaiveViewlet,
            CompileMode::Reevaluate,
        ] {
            for force_interp in [false, true] {
                check_case(&queries(), mode, force_interp, seed);
            }
        }
    }

    #[test]
    fn nested_aggregates_random_partitions_are_bit_exact(seed32 in 0u32..1_000_000u32) {
        let seed = seed32 as u64;
        for mode in [
            CompileMode::HigherOrder,
            CompileMode::FirstOrder,
            CompileMode::NaiveViewlet,
            CompileMode::Reevaluate,
        ] {
            for force_interp in [false, true] {
                check_case(std::slice::from_ref(&nested_query()), mode, force_interp, seed);
            }
        }
    }
}
