//! Shard-count equivalence: partitioned execution must be invisible.
//!
//! Property: for any event stream, any partition of it into ingest batches,
//! and any shard count N ∈ {1, 2, 4, 8}, [`ShardedEngine`]'s merged views are
//! **bit-exactly** equal to a per-event single [`Engine`] AND to the 1-shard
//! sharded engine — in all four compile modes and on both the compiled-kernel
//! and forced-interpreter paths. Streams are integer-weighted, which is the
//! regime where every merge class (disjoint union for partitioned maps, GMR
//! addition for summed scalars) is exact in f64; duplicate keys and
//! insert/delete cancellations are generated on purpose.
//!
//! The query sets exercise both shard plans: a co-partitionable set (join and
//! group-by keyed on the shared column → every map shard-local, no exchange
//! executor) and a forced cross-shard set (self-join with no shared variable →
//! no co-partitioning exists, the exchange executor must carry the result).
//! A coverage guard at the bottom pins the same split onto the real workload
//! queries so the property suite can't silently drift into testing only one
//! plan shape.

use dbtoaster::agca::{CmpOp, Expr, UpdateEvent};
use dbtoaster::compiler::{compile, Catalog, CompileMode, CompileOptions, QuerySpec, RelationMeta};
use dbtoaster::gmr::Value;
use dbtoaster::runtime::{Engine, ShardedEngine};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 3] = [2, 4, 8];

fn catalog() -> Catalog {
    [
        RelationMeta::stream("R", ["A", "B"]),
        RelationMeta::stream("S", ["B", "C"]),
    ]
    .into_iter()
    .collect()
}

/// Queries whose every map can live on one shard: the join and the group-by
/// are keyed on the shared column `b`, so hash-partitioning both R and S on
/// `b` makes them fully local; the scalar totals merge by GMR addition.
fn local_queries() -> Vec<QuerySpec> {
    vec![
        // Scalar join aggregate (summed merge class).
        QuerySpec {
            name: "TOTAL".into(),
            out_vars: vec![],
            expr: Expr::agg_sum(
                Vec::<String>::new(),
                Expr::product_of([
                    Expr::rel("R", ["a", "b"]),
                    Expr::rel("S", ["b", "c"]),
                    Expr::var("c"),
                ]),
            ),
        },
        // Group-by on the partition column with a comparison filter.
        QuerySpec {
            name: "PER_B".into(),
            out_vars: vec!["b".into()],
            expr: Expr::agg_sum(
                ["b"],
                Expr::product_of([
                    Expr::rel("R", ["a", "b"]),
                    Expr::cmp(CmpOp::Le, Expr::var("a"), Expr::var("b")),
                    Expr::var("a"),
                ]),
            ),
        },
        // Group-by join keyed on the join column: co-partitioned on `b`.
        QuerySpec {
            name: "JOINB".into(),
            out_vars: vec!["b".into()],
            expr: Expr::agg_sum(
                ["b"],
                Expr::product_of([Expr::rel("R", ["a", "b"]), Expr::rel("S", ["b", "c"])]),
            ),
        },
    ]
}

/// A self-join with **no** shared variable between the two R atoms: no
/// hash-partitioning of R can co-locate every contributing pair, so the
/// shardability analysis must fall back to the exchange executor.
fn cross_queries() -> Vec<QuerySpec> {
    vec![QuerySpec {
        name: "CROSS".into(),
        out_vars: vec![],
        expr: Expr::agg_sum(
            Vec::<String>::new(),
            Expr::product_of([
                Expr::rel("R", ["a", "b"]),
                Expr::rel("R", ["a2", "b2"]),
                Expr::cmp(CmpOp::Lt, Expr::var("a"), Expr::var("a2")),
            ]),
        ),
    }]
}

/// Deterministic stream generator (same LCG as `batch_equivalence.rs`):
/// inserts and deletes over small integer domains, deletes drawn from the
/// live multiset so multiplicities never go negative.
fn random_stream(seed: u64, len: usize) -> Vec<UpdateEvent> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    let mut next = move |bound: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % bound
    };
    let mut live_r: Vec<Vec<Value>> = Vec::new();
    let mut live_s: Vec<Vec<Value>> = Vec::new();
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        let relation_r = next(2) == 0;
        let (live, rel) = if relation_r {
            (&mut live_r, "R")
        } else {
            (&mut live_s, "S")
        };
        let delete = !live.is_empty() && next(100) < 35;
        if delete {
            let i = next(live.len() as u64) as usize;
            let tuple = live.swap_remove(i);
            out.push(UpdateEvent::delete(rel, tuple));
        } else {
            let tuple: Vec<Value> = (0..2).map(|_| Value::long(next(6) as i64)).collect();
            live.push(tuple.clone());
            out.push(UpdateEvent::insert(rel, tuple));
        }
    }
    out
}

/// Split a stream at random boundaries into the ingest batches handed to
/// `process_events` (possibly all singletons, possibly one huge batch).
fn random_chunks(events: &[UpdateEvent], seed: u64) -> Vec<&[UpdateEvent]> {
    let mut state = seed.wrapping_mul(0xd1342543de82ef95).wrapping_add(7);
    let mut next = move |bound: u64| {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) % bound
    };
    let style = next(4);
    let mut chunks = Vec::new();
    let mut lo = 0usize;
    for i in 0..events.len() {
        let cut = match style {
            0 => next(4) == 0,               // geometric, mean ~4
            1 => (i + 1).is_multiple_of(64), // fixed 64
            2 => true,                       // per-event
            _ => next(100) < 2,              // huge batches
        };
        if cut {
            chunks.push(&events[lo..=i]);
            lo = i + 1;
        }
    }
    if lo < events.len() {
        chunks.push(&events[lo..]);
    }
    chunks
}

/// The complete list of view names the full program maintains.
fn view_names(reference: &Engine) -> Vec<String> {
    let program = reference.program();
    let mut names: Vec<String> = program.maps.iter().map(|m| m.name.clone()).collect();
    names.extend(program.stored_relations.iter().cloned());
    names.extend(program.static_tables.iter().cloned());
    names.sort_unstable();
    names.dedup();
    names
}

/// Every merged view of `sharded` must equal the per-event reference, bit for
/// bit (eps 0.0; `Gmr::equivalent` unions keys, so zero-entry retention
/// differences between a merged union and a single map cannot mask a gap).
fn assert_merged_matches(reference: &Engine, sharded: &ShardedEngine, ctx: &str) {
    let names = view_names(reference);
    assert!(!names.is_empty(), "{ctx}: no maps to compare");
    for name in names {
        match (reference.view(&name), sharded.merged_view(&name)) {
            (Some(ga), Some(gb)) => assert!(
                ga.equivalent(&gb, 0.0),
                "{ctx}: view {name} diverges\nper-event:\n{ga}\nsharded:\n{gb}"
            ),
            (None, None) => {}
            (a, b) => panic!(
                "{ctx}: view {name} present in only one engine (reference: {}, sharded: {})",
                a.is_some(),
                b.is_some()
            ),
        }
    }
}

fn run_sharded(
    program: &dbtoaster::compiler::TriggerProgram,
    cat: &Catalog,
    n: usize,
    force_interp: bool,
    chunks: &[&[UpdateEvent]],
    ctx: &str,
) -> ShardedEngine {
    let mut sharded = ShardedEngine::new(program.clone(), cat, n);
    sharded.set_force_interpreter(force_interp);
    for chunk in chunks {
        let report = sharded.process_events(chunk);
        assert!(
            report.first_error.is_none(),
            "{ctx}: {:?}",
            report.first_error
        );
    }
    sharded
}

/// The core property check: per-event reference vs 1-shard vs N-shard, over
/// the same random stream and the same random batch boundaries.
fn check_case(
    specs: &[QuerySpec],
    mode: CompileMode,
    force_interp: bool,
    seed: u64,
    len: usize,
    expect_executor: Option<bool>,
) {
    let cat = catalog();
    let program = compile(specs, &cat, &CompileOptions::for_mode(mode))
        .unwrap_or_else(|e| panic!("compile [{mode}]: {e}"));
    let events = random_stream(seed, len);
    let chunks = random_chunks(&events, seed ^ 0xabcdef);

    let mut reference = Engine::new(program.clone(), &cat);
    reference.set_force_interpreter(force_interp);
    reference
        .process_all(&events)
        .unwrap_or_else(|e| panic!("per-event [{mode}]: {e}"));

    let path = if force_interp { "interp" } else { "compiled" };
    let single = run_sharded(
        &program,
        &cat,
        1,
        force_interp,
        &chunks,
        &format!("seed {seed} [{mode}/{path}/1-shard]"),
    );
    assert_merged_matches(
        &reference,
        &single,
        &format!("seed {seed} [{mode}/{path}/1-shard]"),
    );

    for n in SHARD_COUNTS {
        let ctx = format!("seed {seed} [{mode}/{path}/{n}-shard]");
        let sharded = run_sharded(&program, &cat, n, force_interp, &chunks, &ctx);
        if let Some(want) = expect_executor {
            assert_eq!(
                sharded.has_executor(),
                want,
                "{ctx}: unexpected shard plan (executor)"
            );
        }
        assert_eq!(sharded.events(), events.len() as u64, "{ctx}: event count");
        // Bit-exact against the per-event engine...
        assert_merged_matches(&reference, &sharded, &ctx);
        // ...and directly against the 1-shard engine, name by name.
        for name in view_names(&reference) {
            let (g1, gn) = (single.merged_view(&name), sharded.merged_view(&name));
            match (g1, gn) {
                (Some(g1), Some(gn)) => assert!(
                    g1.equivalent(&gn, 0.0),
                    "{ctx}: view {name} diverges from 1-shard\n1-shard:\n{g1}\n{n}-shard:\n{gn}"
                ),
                (None, None) => {}
                _ => panic!("{ctx}: view {name} present at only one shard count"),
            }
        }
    }
}

/// The local query set must actually compile to an executor-free plan, and the
/// cross query must actually force the exchange executor (with real exchange
/// traffic) — otherwise the property tests above silently degenerate.
#[test]
fn query_sets_span_both_shard_plans() {
    let cat = catalog();
    let opts = CompileOptions::for_mode(CompileMode::HigherOrder);
    let local = compile(&local_queries(), &cat, &opts).unwrap();
    let mut sharded = ShardedEngine::new(local, &cat, 4);
    assert!(
        !sharded.has_executor(),
        "co-partitioned query set must be fully shard-local: {:?}",
        sharded.plan()
    );
    let events = random_stream(11, 200);
    let report = sharded.process_events(&events);
    assert!(report.first_error.is_none());
    assert_eq!(
        sharded.exchange_stats().bytes,
        0,
        "local plan must not ship"
    );

    let cross = compile(&cross_queries(), &cat, &opts).unwrap();
    let mut sharded = ShardedEngine::new(cross, &cat, 4);
    assert!(
        sharded.has_executor(),
        "no-shared-variable self-join must force the exchange executor: {:?}",
        sharded.plan()
    );
    let report = sharded.process_events(&events);
    assert!(report.first_error.is_none());
    assert!(
        sharded.exchange_stats().bytes > 0,
        "exchange plan must account interchange traffic"
    );
}

/// The real workload queries must cover both plan shapes too: at least one
/// fully shard-local query and at least one that exchanges. This is the same
/// split `harness shard` reports, pinned as a test.
#[test]
fn workload_queries_span_both_shard_plans() {
    use dbtoaster::prelude::*;
    let sql_catalog = dbtoaster::workloads::full_catalog();
    let cat = dbtoaster::to_compiler_catalog(&sql_catalog);
    let (mut local, mut exchanging) = (Vec::new(), Vec::new());
    for q in dbtoaster::workloads::all_queries() {
        let engine = QueryEngineBuilder::new(sql_catalog.clone())
            .add_query(q.name, q.sql)
            .mode(CompileMode::HigherOrder)
            .build()
            .unwrap_or_else(|e| panic!("compile workload {}: {e}", q.name));
        let sharded = ShardedEngine::new(engine.program().clone(), &cat, 2);
        if sharded.has_executor() {
            exchanging.push(q.name);
        } else {
            local.push(q.name);
        }
    }
    assert!(
        !local.is_empty(),
        "no workload query is fully shard-local (exchanging: {exchanging:?})"
    );
    assert!(
        !exchanging.is_empty(),
        "no workload query exercises the exchange executor (local: {local:?})"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Co-partitioned queries: N shards ≡ 1 shard ≡ per-event, all modes,
    /// both execution paths.
    #[test]
    fn local_plans_are_bit_exact_across_shard_counts(seed32 in 0u32..1_000_000u32) {
        let seed = seed32 as u64;
        for mode in [
            CompileMode::HigherOrder,
            CompileMode::FirstOrder,
            CompileMode::NaiveViewlet,
            CompileMode::Reevaluate,
        ] {
            for force_interp in [false, true] {
                check_case(&local_queries(), mode, force_interp, seed, 240, None);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Forced cross-shard query: the exchange executor must carry the result
    /// bit-exactly at every shard count. (Quadratic in |R| — shorter streams.)
    #[test]
    fn exchange_plans_are_bit_exact_across_shard_counts(seed32 in 0u32..1_000_000u32) {
        let seed = seed32 as u64;
        for mode in [
            CompileMode::HigherOrder,
            CompileMode::FirstOrder,
            CompileMode::NaiveViewlet,
            CompileMode::Reevaluate,
        ] {
            for force_interp in [false, true] {
                check_case(
                    &cross_queries(),
                    mode,
                    force_interp,
                    seed,
                    120,
                    Some(true),
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Mixed program: local and cross queries compiled together share one
    /// shard plan (executor present for the cross map, partitioned maps still
    /// merged from the shards) — the merge must stay exact per map class.
    #[test]
    fn mixed_programs_are_bit_exact_across_shard_counts(seed32 in 0u32..1_000_000u32) {
        let seed = seed32 as u64;
        let mut specs = local_queries();
        specs.extend(cross_queries());
        for force_interp in [false, true] {
            check_case(
                &specs,
                CompileMode::HigherOrder,
                force_interp,
                seed,
                160,
                Some(true),
            );
        }
    }
}
