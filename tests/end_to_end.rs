//! End-to-end smoke tests: every benchmark query compiles under every strategy and
//! processes a realistic stream without errors, producing finite results; multiple
//! queries can share one engine; static tables are honoured.

use dbtoaster::prelude::*;
use dbtoaster::workloads::{self, Family};

fn small_dataset(family: Family) -> workloads::Dataset {
    match family {
        Family::Tpch => {
            let mut d = workloads::tpch::generate(&workloads::TpchConfig {
                scale: 0.003,
                seed: 11,
                orders_working_set: 60,
                lineitem_working_set: 240,
            });
            d.truncate(1_500);
            d
        }
        Family::Finance => workloads::finance::generate(&workloads::FinanceConfig {
            events: 1_500,
            seed: 11,
            ..Default::default()
        }),
        Family::Scientific => workloads::mddb::generate(&workloads::MddbConfig {
            atoms: 20,
            steps: 30,
            seed: 11,
        }),
    }
}

#[test]
fn every_query_compiles_under_every_strategy() {
    let catalog = workloads::full_catalog();
    for q in workloads::all_queries() {
        for mode in [
            CompileMode::HigherOrder,
            CompileMode::FirstOrder,
            CompileMode::NaiveViewlet,
            CompileMode::Reevaluate,
        ] {
            let engine = QueryEngineBuilder::new(catalog.clone())
                .add_query(q.name, q.sql)
                .mode(mode)
                .build()
                .unwrap_or_else(|e| panic!("{} [{mode}] failed to compile: {e}", q.name));
            assert!(
                !engine.program().maps.is_empty(),
                "{} [{mode}]: no maps",
                q.name
            );
        }
    }
}

#[test]
fn every_query_processes_a_stream_with_higher_order_ivm() {
    let catalog = workloads::full_catalog();
    for q in workloads::all_queries() {
        let mut engine = QueryEngineBuilder::new(catalog.clone())
            .add_query(q.name, q.sql)
            .mode(CompileMode::HigherOrder)
            .build()
            .unwrap_or_else(|e| panic!("{}: {e}", q.name));
        let mut data = small_dataset(q.family);
        // MST and VWAP have quadratic per-event cost even under Higher-Order IVM (the
        // paper's worst cases); keep their streams short so the smoke test stays fast.
        match q.name {
            "mst" => data.truncate(150),
            "vwap" => data.truncate(300),
            _ => {}
        }
        for (t, rows) in &data.tables {
            engine.load_table(t, rows.clone()).unwrap();
        }
        engine.init().unwrap();
        engine
            .process_all(&data.events)
            .unwrap_or_else(|e| panic!("{}: stream processing failed: {e}", q.name));
        let result = engine
            .result(q.name)
            .unwrap_or_else(|e| panic!("{}: {e}", q.name));
        for row in &result.rows {
            for v in &row.values {
                assert!(v.is_finite(), "{}: non-finite aggregate {v}", q.name);
            }
        }
        assert_eq!(engine.stats().events as usize, data.events.len());
        assert!(engine.stats().refresh_rate() > 0.0);
    }
}

#[test]
fn multiple_queries_share_one_engine_and_deduplicate_views() {
    let catalog = workloads::tpch_catalog();
    let q3 = workloads::query("q3").unwrap();
    let q10 = workloads::query("q10").unwrap();
    let q6 = workloads::query("q6").unwrap();
    let mut engine = QueryEngineBuilder::new(catalog)
        .add_query(q3.name, q3.sql)
        .add_query(q10.name, q10.sql)
        .add_query(q6.name, q6.sql)
        .mode(CompileMode::HigherOrder)
        .build()
        .unwrap();
    let data = small_dataset(Family::Tpch);
    for (t, rows) in &data.tables {
        engine.load_table(t, rows.clone()).unwrap();
    }
    engine.init().unwrap();
    engine.process_all(&data.events).unwrap();
    for name in ["q3", "q10", "q6"] {
        let r = engine.result(name).unwrap();
        for row in &r.rows {
            assert!(row.values.iter().all(|v| v.is_finite()));
        }
    }
    assert_eq!(engine.program().results.len(), 3);
}

#[test]
fn static_tables_affect_results() {
    // SSB4 groups by the region of the supplier's nation, which comes from the static
    // Nation table; loading the tables before the stream must produce a non-empty
    // grouped result, and skipping them must leave the result empty.
    let catalog = workloads::tpch_catalog();
    let q = workloads::query("ssb4").unwrap();
    let mut engine = QueryEngineBuilder::new(catalog)
        .add_query(q.name, q.sql)
        .mode(CompileMode::HigherOrder)
        .build()
        .unwrap();
    let data = small_dataset(Family::Tpch);
    for (t, rows) in &data.tables {
        engine.load_table(t, rows.clone()).unwrap();
    }
    engine.init().unwrap();
    engine.process_all(&data.events).unwrap();

    // Without the static tables the same stream yields an empty result.
    let mut engine2 = QueryEngineBuilder::new(workloads::tpch_catalog())
        .add_query(q.name, q.sql)
        .mode(CompileMode::HigherOrder)
        .build()
        .unwrap();
    engine2.process_all(&data.events).unwrap();
    let with_tables: f64 = engine
        .result("ssb4")
        .unwrap()
        .rows
        .iter()
        .flat_map(|r| r.values.clone())
        .map(f64::abs)
        .sum();
    let without_tables: f64 = engine2
        .result("ssb4")
        .unwrap()
        .rows
        .iter()
        .flat_map(|r| r.values.clone())
        .map(f64::abs)
        .sum();
    assert!(with_tables > 0.0, "expected non-empty SSB4 result");
    assert_eq!(without_tables, 0.0);
}

#[test]
fn memory_and_trace_samples_are_monotone_in_events() {
    let catalog = workloads::finance_catalog();
    let q = workloads::query("bsv").unwrap();
    let mut engine = QueryEngineBuilder::new(catalog)
        .add_query(q.name, q.sql)
        .build()
        .unwrap();
    let data = small_dataset(Family::Finance);
    let half = data.events.len() / 2;
    engine.process_all(&data.events[..half]).unwrap();
    let s1 = engine.sample(0.5);
    engine.process_all(&data.events[half..]).unwrap();
    let s2 = engine.sample(1.0);
    assert!(s2.elapsed_secs >= s1.elapsed_secs);
    assert!(s2.refresh_rate > 0.0);
    assert!(s2.memory_mb > 0.0);
}

#[test]
fn query_engine_reports_compilation_features() {
    // The compile report drives Figure 2; spot-check a few entries.
    let catalog = workloads::full_catalog();
    let cases = [
        ("q3", false),  // flat equijoin: no nested rewrite needed
        ("q17a", true), // equality-correlated nested aggregate
        ("vwap", true), // inequality-correlated nested aggregate
    ];
    for (name, nested) in cases {
        let q = workloads::query(name).unwrap();
        let engine = QueryEngineBuilder::new(catalog.clone())
            .add_query(q.name, q.sql)
            .build()
            .unwrap();
        assert_eq!(
            engine.program().report.used_nested_rewrite,
            nested,
            "{name} nested-rewrite flag"
        );
    }
}
