//! Cross-strategy equivalence tests.
//!
//! The strongest correctness check in the repository: for every benchmark query, the
//! result produced by Higher-Order IVM (the paper's contribution) must equal — at every
//! point we sample, and in particular at the end of the stream — the result produced by
//! classical first-order IVM and by full re-evaluation of the query. Any bug in the
//! delta transform, the materialization heuristics, statement ordering or the runtime
//! shows up as a divergence here.

use dbtoaster::prelude::*;
use dbtoaster::workloads::{self, Family};

const EPS: f64 = 1e-6;

fn dataset_for(family: Family, events: usize) -> workloads::Dataset {
    match family {
        Family::Tpch => {
            let mut d = workloads::tpch::generate(&workloads::TpchConfig {
                scale: 0.002,
                seed: 7,
                orders_working_set: 40,
                lineitem_working_set: 160,
            });
            d.truncate(events);
            d
        }
        Family::Finance => workloads::finance::generate(&workloads::FinanceConfig {
            events,
            seed: 7,
            brokers: 5,
            delete_probability: 0.25,
        }),
        Family::Scientific => {
            let mut d = workloads::mddb::generate(&workloads::MddbConfig {
                atoms: 12,
                steps: 20,
                seed: 7,
            });
            d.truncate(events);
            d
        }
    }
}

fn run_query(q: &workloads::WorkloadQuery, mode: CompileMode, events: usize) -> ResultTable {
    let catalog = workloads::full_catalog();
    let mut engine = QueryEngineBuilder::new(catalog)
        .add_query(q.name, q.sql)
        .mode(mode)
        .build()
        .unwrap_or_else(|e| panic!("{} [{mode}]: build failed: {e}", q.name));
    let data = dataset_for(q.family, events);
    for (table, rows) in &data.tables {
        engine.load_table(table, rows.clone()).unwrap();
    }
    engine.init().unwrap();
    engine
        .process_all(&data.events)
        .unwrap_or_else(|e| panic!("{} [{mode}]: processing failed: {e}", q.name));
    engine
        .result(q.name)
        .unwrap_or_else(|e| panic!("{} [{mode}]: result failed: {e}", q.name))
}

/// Compare two result tables modulo row order and floating-point noise.
fn assert_equivalent(query: &str, mode: CompileMode, got: &ResultTable, expected: &ResultTable) {
    // Collect (key -> values) from both, treating missing rows as all-zero aggregates
    // (an empty group and an absent group are indistinguishable for SUM/COUNT views).
    let mut keys: Vec<Vec<Value>> = Vec::new();
    for r in got.rows.iter().chain(expected.rows.iter()) {
        if !keys.contains(&r.key) {
            keys.push(r.key.clone());
        }
    }
    let lookup = |t: &ResultTable, key: &Vec<Value>| -> Vec<f64> {
        t.rows
            .iter()
            .find(|r| &r.key == key)
            .map(|r| r.values.clone())
            .unwrap_or_else(|| vec![0.0; t.columns.len()])
    };
    for key in keys {
        let g = lookup(got, &key);
        let e = lookup(expected, &key);
        let n = g.len().max(e.len());
        for i in 0..n {
            let gv = g.get(i).copied().unwrap_or(0.0);
            let ev = e.get(i).copied().unwrap_or(0.0);
            let scale = 1.0_f64.max(ev.abs());
            assert!(
                (gv - ev).abs() / scale < EPS,
                "{query} [{mode}] diverges from re-evaluation at key {key:?} column {i}: {gv} vs {ev}"
            );
        }
    }
}

fn check_query(name: &str, events: usize, modes: &[CompileMode]) {
    let q = workloads::query(name).unwrap_or_else(|| panic!("unknown query {name}"));
    let reference = run_query(&q, CompileMode::Reevaluate, events);
    assert!(
        !reference.columns.is_empty(),
        "{name}: reference result has no columns"
    );
    for &mode in modes {
        let got = run_query(&q, mode, events);
        assert_equivalent(name, mode, &got, &reference);
    }
}

const STANDARD_MODES: &[CompileMode] = &[CompileMode::HigherOrder, CompileMode::FirstOrder];
const ALL_MODES: &[CompileMode] = &[
    CompileMode::HigherOrder,
    CompileMode::FirstOrder,
    CompileMode::NaiveViewlet,
];

// ------------------------------------------------------------------- TPC-H queries

#[test]
fn q1_equivalence() {
    check_query("q1", 800, ALL_MODES);
}

#[test]
fn q3_equivalence() {
    check_query("q3", 800, STANDARD_MODES);
}

#[test]
fn q4_equivalence() {
    check_query("q4", 500, STANDARD_MODES);
}

#[test]
fn q5_equivalence() {
    check_query("q5", 600, STANDARD_MODES);
}

#[test]
fn q6_equivalence() {
    check_query("q6", 800, ALL_MODES);
}

#[test]
fn q10_equivalence() {
    check_query("q10", 800, STANDARD_MODES);
}

#[test]
fn q11a_equivalence() {
    check_query("q11a", 800, ALL_MODES);
}

#[test]
fn q12_equivalence() {
    check_query("q12", 800, STANDARD_MODES);
}

#[test]
fn q17a_equivalence() {
    check_query("q17a", 500, STANDARD_MODES);
}

#[test]
fn q18a_equivalence() {
    check_query("q18a", 500, STANDARD_MODES);
}

#[test]
fn q22a_equivalence() {
    check_query("q22a", 500, STANDARD_MODES);
}

#[test]
fn ssb4_equivalence() {
    check_query("ssb4", 600, STANDARD_MODES);
}

// ----------------------------------------------------------------- finance queries

#[test]
fn vwap_equivalence() {
    check_query("vwap", 150, STANDARD_MODES);
}

#[test]
fn axf_equivalence() {
    check_query("axf", 500, STANDARD_MODES);
}

#[test]
fn bsp_equivalence() {
    check_query("bsp", 500, STANDARD_MODES);
}

#[test]
fn bsv_equivalence() {
    check_query("bsv", 500, ALL_MODES);
}

#[test]
fn mst_equivalence() {
    check_query("mst", 60, STANDARD_MODES);
}

#[test]
fn psp_equivalence() {
    check_query("psp", 250, STANDARD_MODES);
}

// -------------------------------------------------------------- scientific queries

#[test]
fn mddb1_equivalence() {
    check_query("mddb1", 200, STANDARD_MODES);
}

// ----------------------------------------------------- deletions / negative results

#[test]
fn deletions_restore_previous_results() {
    // Processing an insert followed by the matching delete must leave every query
    // result exactly where it was (GMRs make deletions just negative-multiplicity
    // insertions, so this checks the whole pipeline's sign handling).
    let catalog = workloads::full_catalog();
    let q = workloads::query("axf").unwrap();
    let mut engine = QueryEngineBuilder::new(catalog)
        .add_query(q.name, q.sql)
        .mode(CompileMode::HigherOrder)
        .build()
        .unwrap();
    let data = dataset_for(Family::Finance, 300);
    engine.process_all(&data.events).unwrap();
    let before = engine.result("axf").unwrap();

    let bid = vec![
        Value::long(99_999),
        Value::long(424_242),
        Value::long(1),
        Value::double(9_000.0),
        Value::double(10.0),
    ];
    engine.process(&UpdateEvent::insert("Bids", bid.clone())).unwrap();
    engine.process(&UpdateEvent::delete("Bids", bid)).unwrap();
    let after = engine.result("axf").unwrap();
    assert_equivalent("axf", CompileMode::HigherOrder, &after, &before);
}
