//! Cross-strategy equivalence tests.
//!
//! The strongest correctness check in the repository: for every benchmark query, the
//! result produced by Higher-Order IVM (the paper's contribution) must equal — at every
//! point we sample, and in particular at the end of the stream — the result produced by
//! classical first-order IVM and by full re-evaluation of the query. Any bug in the
//! delta transform, the materialization heuristics, statement ordering or the runtime
//! shows up as a divergence here.

use dbtoaster::prelude::*;
use dbtoaster::workloads::{self, Family};

const EPS: f64 = 1e-6;

fn dataset_for(family: Family, events: usize) -> workloads::Dataset {
    match family {
        Family::Tpch => {
            let mut d = workloads::tpch::generate(&workloads::TpchConfig {
                scale: 0.002,
                seed: 7,
                orders_working_set: 40,
                lineitem_working_set: 160,
            });
            d.truncate(events);
            d
        }
        Family::Finance => workloads::finance::generate(&workloads::FinanceConfig {
            events,
            seed: 7,
            brokers: 5,
            delete_probability: 0.25,
        }),
        Family::Scientific => {
            let mut d = workloads::mddb::generate(&workloads::MddbConfig {
                atoms: 12,
                steps: 20,
                seed: 7,
            });
            d.truncate(events);
            d
        }
    }
}

fn run_query(q: &workloads::WorkloadQuery, mode: CompileMode, events: usize) -> ResultTable {
    let catalog = workloads::full_catalog();
    let mut engine = QueryEngineBuilder::new(catalog)
        .add_query(q.name, q.sql)
        .mode(mode)
        .build()
        .unwrap_or_else(|e| panic!("{} [{mode}]: build failed: {e}", q.name));
    let data = dataset_for(q.family, events);
    for (table, rows) in &data.tables {
        engine.load_table(table, rows.clone()).unwrap();
    }
    engine.init().unwrap();
    engine
        .process_all(&data.events)
        .unwrap_or_else(|e| panic!("{} [{mode}]: processing failed: {e}", q.name));
    engine
        .result(q.name)
        .unwrap_or_else(|e| panic!("{} [{mode}]: result failed: {e}", q.name))
}

/// Compare two result tables modulo row order and floating-point noise.
fn assert_equivalent(query: &str, mode: CompileMode, got: &ResultTable, expected: &ResultTable) {
    // Collect (key -> values) from both, treating missing rows as all-zero aggregates
    // (an empty group and an absent group are indistinguishable for SUM/COUNT views).
    let mut keys: Vec<Vec<Value>> = Vec::new();
    for r in got.rows.iter().chain(expected.rows.iter()) {
        if !keys.contains(&r.key) {
            keys.push(r.key.clone());
        }
    }
    let lookup = |t: &ResultTable, key: &Vec<Value>| -> Vec<f64> {
        t.rows
            .iter()
            .find(|r| &r.key == key)
            .map(|r| r.values.clone())
            .unwrap_or_else(|| vec![0.0; t.columns.len()])
    };
    for key in keys {
        let g = lookup(got, &key);
        let e = lookup(expected, &key);
        let n = g.len().max(e.len());
        for i in 0..n {
            let gv = g.get(i).copied().unwrap_or(0.0);
            let ev = e.get(i).copied().unwrap_or(0.0);
            let scale = 1.0_f64.max(ev.abs());
            assert!(
                (gv - ev).abs() / scale < EPS,
                "{query} [{mode}] diverges from re-evaluation at key {key:?} column {i}: {gv} vs {ev}"
            );
        }
    }
}

fn check_query(name: &str, events: usize, modes: &[CompileMode]) {
    let q = workloads::query(name).unwrap_or_else(|| panic!("unknown query {name}"));
    let reference = run_query(&q, CompileMode::Reevaluate, events);
    assert!(
        !reference.columns.is_empty(),
        "{name}: reference result has no columns"
    );
    for &mode in modes {
        let got = run_query(&q, mode, events);
        assert_equivalent(name, mode, &got, &reference);
    }
}

const STANDARD_MODES: &[CompileMode] = &[CompileMode::HigherOrder, CompileMode::FirstOrder];
const ALL_MODES: &[CompileMode] = &[
    CompileMode::HigherOrder,
    CompileMode::FirstOrder,
    CompileMode::NaiveViewlet,
];

// ------------------------------------------------------------------- TPC-H queries

#[test]
fn q1_equivalence() {
    check_query("q1", 800, ALL_MODES);
}

#[test]
fn q3_equivalence() {
    check_query("q3", 800, STANDARD_MODES);
}

#[test]
fn q4_equivalence() {
    check_query("q4", 500, STANDARD_MODES);
}

#[test]
fn q5_equivalence() {
    check_query("q5", 600, STANDARD_MODES);
}

#[test]
fn q6_equivalence() {
    check_query("q6", 800, ALL_MODES);
}

#[test]
fn q10_equivalence() {
    check_query("q10", 800, STANDARD_MODES);
}

#[test]
fn q11a_equivalence() {
    check_query("q11a", 800, ALL_MODES);
}

#[test]
fn q12_equivalence() {
    check_query("q12", 800, STANDARD_MODES);
}

#[test]
fn q17a_equivalence() {
    check_query("q17a", 500, STANDARD_MODES);
}

#[test]
fn q18a_equivalence() {
    check_query("q18a", 500, STANDARD_MODES);
}

#[test]
fn q22a_equivalence() {
    check_query("q22a", 500, STANDARD_MODES);
}

#[test]
fn ssb4_equivalence() {
    check_query("ssb4", 600, STANDARD_MODES);
}

// ----------------------------------------------------------------- finance queries

#[test]
fn vwap_equivalence() {
    check_query("vwap", 150, STANDARD_MODES);
}

#[test]
fn axf_equivalence() {
    check_query("axf", 500, STANDARD_MODES);
}

#[test]
fn bsp_equivalence() {
    check_query("bsp", 500, STANDARD_MODES);
}

#[test]
fn bsv_equivalence() {
    check_query("bsv", 500, ALL_MODES);
}

#[test]
fn mst_equivalence() {
    check_query("mst", 60, STANDARD_MODES);
}

#[test]
fn psp_equivalence() {
    check_query("psp", 250, STANDARD_MODES);
}

// -------------------------------------------------------------- scientific queries

#[test]
fn mddb1_equivalence() {
    check_query("mddb1", 200, STANDARD_MODES);
}

// ------------------------------------------- randomized cursor/bindings property test

mod random_streams {
    use dbtoaster::agca::{eval, Bindings, Expr, MemSource, UpdateEvent, UpdateSign};
    use dbtoaster::compiler::{compile, CompileMode, CompileOptions, QuerySpec, RelationMeta};
    use dbtoaster::gmr::{Gmr, Schema, Value};
    use dbtoaster::runtime::Engine;

    /// Tiny deterministic LCG so the property test needs no external crates.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self, bound: i64) -> i64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((self.0 >> 33) % bound as u64) as i64
        }
    }

    fn catalog() -> dbtoaster::compiler::Catalog {
        [
            RelationMeta::stream("R", ["A", "B"]),
            RelationMeta::stream("S", ["B", "C"]),
        ]
        .into_iter()
        .collect()
    }

    /// Query shapes covering joins, group-by and comparisons — all linear, so
    /// every strategy (including classical IVM and the naive viewlet
    /// transform) must maintain them exactly.
    fn shapes() -> Vec<QuerySpec> {
        vec![
            QuerySpec {
                name: "join_sum".into(),
                out_vars: vec![],
                expr: Expr::agg_sum(
                    Vec::<String>::new(),
                    Expr::product_of([
                        Expr::rel("R", ["a", "b"]),
                        Expr::rel("S", ["b", "c"]),
                        Expr::var("c"),
                    ]),
                ),
            },
            QuerySpec {
                name: "group_by".into(),
                out_vars: vec!["b".into()],
                expr: Expr::agg_sum(
                    ["b"],
                    Expr::product_of([Expr::rel("R", ["a", "b"]), Expr::var("a")]),
                ),
            },
            QuerySpec {
                name: "selection".into(),
                out_vars: vec![],
                expr: Expr::agg_sum(
                    Vec::<String>::new(),
                    Expr::product_of([
                        Expr::rel("R", ["a", "b"]),
                        Expr::cmp(dbtoaster::agca::CmpOp::Lt, Expr::var("a"), Expr::var("b")),
                    ]),
                ),
            },
        ]
    }

    /// Random insert/delete stream over R and S with a small key domain, so
    /// collisions, cancellations and re-insertions all occur.
    fn stream(seed: u64, events: usize) -> Vec<UpdateEvent> {
        let mut rng = Lcg(seed.wrapping_mul(2654435769).wrapping_add(1));
        let mut live: Vec<(&'static str, i64, i64)> = Vec::new();
        let mut out = Vec::with_capacity(events);
        for _ in 0..events {
            let delete = !live.is_empty() && rng.next(4) == 0;
            if delete {
                let idx = rng.next(live.len() as i64) as usize;
                let (rel, x, y) = live.swap_remove(idx);
                out.push(UpdateEvent::delete(
                    rel,
                    vec![Value::long(x), Value::long(y)],
                ));
            } else {
                let rel = if rng.next(2) == 0 { "R" } else { "S" };
                let x = rng.next(6);
                let y = rng.next(5);
                live.push((rel, x, y));
                out.push(UpdateEvent::insert(
                    rel,
                    vec![Value::long(x), Value::long(y)],
                ));
            }
        }
        out
    }

    /// Reference semantics: mirror the stream into a [`MemSource`] and
    /// re-evaluate the query expression from scratch with the evaluator.
    fn reference(events: &[UpdateEvent], q: &QuerySpec) -> Gmr {
        let mut src = MemSource::new();
        src.set_relation("R", Gmr::new(Schema::new(["c0", "c1"])));
        src.set_relation("S", Gmr::new(Schema::new(["c0", "c1"])));
        for e in events {
            let mult = match e.sign {
                UpdateSign::Insert => 1.0,
                UpdateSign::Delete => -1.0,
            };
            src.apply_update(&e.relation, e.tuple.clone(), mult);
        }
        eval(&q.expr, &src, &Bindings::new()).unwrap()
    }

    /// Property: for random streams, the view contents produced through the
    /// cursor-based `for_each_matching` read path and the scoped `Bindings`
    /// evaluator are bit-identical (eps = 0.0 — all data is integral) to
    /// direct re-evaluation, under every compilation strategy.
    #[test]
    fn random_streams_agree_with_reference_semantics_in_all_modes() {
        for seed in 0..10u64 {
            let events = stream(seed, 240);
            for q in shapes() {
                let expected = reference(&events, &q);
                for mode in [
                    CompileMode::HigherOrder,
                    CompileMode::FirstOrder,
                    CompileMode::NaiveViewlet,
                    CompileMode::Reevaluate,
                ] {
                    let program = compile(
                        std::slice::from_ref(&q),
                        &catalog(),
                        &CompileOptions::for_mode(mode),
                    )
                    .unwrap_or_else(|e| panic!("{} [{mode}]: {e}", q.name));
                    let mut engine = Engine::new(program, &catalog());
                    engine
                        .process_all(&events)
                        .unwrap_or_else(|e| panic!("{} [{mode}] seed {seed}: {e}", q.name));
                    let got = engine.result(&q.name).unwrap();
                    assert!(
                        got.equivalent(&expected, 0.0),
                        "{} [{mode}] seed {seed}: engine view differs from reference\n\
                         engine:\n{got}\nreference:\n{expected}",
                        q.name
                    );
                }
            }
        }
    }
}

// ----------------------------------------------------- deletions / negative results

#[test]
fn deletions_restore_previous_results() {
    // Processing an insert followed by the matching delete must leave every query
    // result exactly where it was (GMRs make deletions just negative-multiplicity
    // insertions, so this checks the whole pipeline's sign handling).
    let catalog = workloads::full_catalog();
    let q = workloads::query("axf").unwrap();
    let mut engine = QueryEngineBuilder::new(catalog)
        .add_query(q.name, q.sql)
        .mode(CompileMode::HigherOrder)
        .build()
        .unwrap();
    let data = dataset_for(Family::Finance, 300);
    engine.process_all(&data.events).unwrap();
    let before = engine.result("axf").unwrap();

    let bid = vec![
        Value::long(99_999),
        Value::long(424_242),
        Value::long(1),
        Value::double(9_000.0),
        Value::double(10.0),
    ];
    engine
        .process(&UpdateEvent::insert("Bids", bid.clone()))
        .unwrap();
    engine.process(&UpdateEvent::delete("Bids", bid)).unwrap();
    let after = engine.result("axf").unwrap();
    assert_equivalent("axf", CompileMode::HigherOrder, &after, &before);
}
