//! Differential tests for compiled trigger kernels.
//!
//! The AST interpreter is the semantic ground truth; the compiled
//! slot-addressed plan path (`dbtoaster_agca::plan`) must agree with it on
//! every maintained map — not just the query result — because any divergence
//! in an auxiliary view eventually surfaces in a result.
//!
//! Two layers:
//!
//! * every benchmark workload query runs twice (kernels on / interpreter
//!   forced) over the same stream, comparing all maintained maps. Workload
//!   data contains non-dyadic doubles (TPC-H cent prices), so sums may differ
//!   in the last ulp between summation orders; maps are compared with a tight
//!   *relative* tolerance (1e-9, about seven orders of magnitude above ulp
//!   noise and seven below any real divergence).
//! * proptest-generated random programs (joins, group-bys, comparisons,
//!   lifts, nested aggregates, negation) over integer-valued streams, where
//!   f64 arithmetic is exact in any order — compared **bit-exact** (eps 0.0).

use dbtoaster::prelude::*;
use dbtoaster::workloads::{self, Family};

// ---------------------------------------------------------------- workloads

fn dataset_for(family: Family, events: usize) -> workloads::Dataset {
    match family {
        Family::Tpch => {
            let mut d = workloads::tpch::generate(&workloads::TpchConfig {
                scale: 0.002,
                seed: 11,
                orders_working_set: 40,
                lineitem_working_set: 160,
            });
            d.truncate(events);
            d
        }
        Family::Finance => workloads::finance::generate(&workloads::FinanceConfig {
            events,
            seed: 11,
            brokers: 5,
            delete_probability: 0.25,
        }),
        Family::Scientific => {
            let mut d = workloads::mddb::generate(&workloads::MddbConfig {
                atoms: 12,
                steps: 20,
                seed: 11,
            });
            d.truncate(events);
            d
        }
    }
}

fn run_engine(
    q: &workloads::WorkloadQuery,
    mode: CompileMode,
    data: &workloads::Dataset,
    force_interpreter: bool,
) -> QueryEngine {
    let catalog = workloads::full_catalog();
    let mut engine = QueryEngineBuilder::new(catalog)
        .add_query(q.name, q.sql)
        .mode(mode)
        .build()
        .unwrap_or_else(|e| panic!("{} [{mode}]: build failed: {e}", q.name));
    engine.set_force_interpreter(force_interpreter);
    for (table, rows) in &data.tables {
        engine.load_table(table, rows.clone()).unwrap();
    }
    engine.init().unwrap();
    engine
        .process_all(&data.events)
        .unwrap_or_else(|e| panic!("{} [{mode}]: processing failed: {e}", q.name));
    engine
}

/// Compare two GMRs key-by-key with a relative tolerance.
fn assert_maps_match(context: &str, map: &str, got: &Gmr, expected: &Gmr, rel_eps: f64) {
    let keys: Vec<_> = got
        .iter()
        .map(|(t, _)| t.clone())
        .chain(expected.iter().map(|(t, _)| t.clone()))
        .collect();
    for key in keys {
        let g = got.get(&key);
        let e = expected.get(&key);
        let scale = 1.0_f64.max(g.abs()).max(e.abs());
        assert!(
            (g - e).abs() <= rel_eps * scale,
            "{context}: map {map} diverges at key {key:?}: compiled {g} vs interpreted {e}"
        );
    }
}

fn check_workload(name: &str, events: usize, modes: &[CompileMode]) {
    let q = workloads::query(name).unwrap_or_else(|| panic!("unknown query {name}"));
    let data = dataset_for(q.family, events);
    for &mode in modes {
        let compiled = run_engine(&q, mode, &data, false);
        let interpreted = run_engine(&q, mode, &data, true);
        assert_eq!(interpreted.stats().compiled_triggers, 0);
        let context = format!("{name} [{mode}]");
        for m in &compiled.program().maps {
            let got = compiled
                .view(&m.name)
                .unwrap_or_else(|| panic!("{context}: missing view {}", m.name));
            let expect = interpreted
                .view(&m.name)
                .unwrap_or_else(|| panic!("{context}: missing view {}", m.name));
            assert_maps_match(&context, &m.name, &got, &expect, 1e-9);
        }
    }
}

/// Higher-Order IVM must compile the hot path of these queries: if a future
/// lowering change silently regresses one of them to the interpreter, this
/// fails before the benchmark numbers do.
#[test]
fn representative_queries_actually_compile() {
    for name in ["q1", "q3", "q6", "q12", "axf", "bsv", "vwap"] {
        let q = workloads::query(name).unwrap();
        let data = dataset_for(q.family, 50);
        let engine = run_engine(&q, CompileMode::HigherOrder, &data, false);
        assert!(
            engine.stats().compiled_triggers > 0,
            "{name}: no statement lowered to a compiled kernel"
        );
    }
}

#[test]
fn q1_compiled_equals_interpreted() {
    check_workload(
        "q1",
        700,
        &[CompileMode::HigherOrder, CompileMode::FirstOrder],
    );
}

#[test]
fn q3_compiled_equals_interpreted() {
    check_workload("q3", 700, &[CompileMode::HigherOrder]);
}

#[test]
fn q4_compiled_equals_interpreted() {
    check_workload("q4", 400, &[CompileMode::HigherOrder]);
}

#[test]
fn q5_compiled_equals_interpreted() {
    check_workload("q5", 500, &[CompileMode::HigherOrder]);
}

#[test]
fn q6_compiled_equals_interpreted() {
    check_workload(
        "q6",
        700,
        &[
            CompileMode::HigherOrder,
            CompileMode::FirstOrder,
            CompileMode::NaiveViewlet,
            CompileMode::Reevaluate,
        ],
    );
}

#[test]
fn q10_compiled_equals_interpreted() {
    check_workload("q10", 600, &[CompileMode::HigherOrder]);
}

#[test]
fn q11a_compiled_equals_interpreted() {
    check_workload("q11a", 600, &[CompileMode::HigherOrder]);
}

#[test]
fn q12_compiled_equals_interpreted() {
    check_workload("q12", 600, &[CompileMode::HigherOrder]);
}

#[test]
fn q17a_compiled_equals_interpreted() {
    check_workload("q17a", 400, &[CompileMode::HigherOrder]);
}

#[test]
fn q18a_compiled_equals_interpreted() {
    check_workload("q18a", 400, &[CompileMode::HigherOrder]);
}

#[test]
fn q22a_compiled_equals_interpreted() {
    check_workload("q22a", 400, &[CompileMode::HigherOrder]);
}

#[test]
fn ssb4_compiled_equals_interpreted() {
    check_workload("ssb4", 500, &[CompileMode::HigherOrder]);
}

#[test]
fn vwap_compiled_equals_interpreted() {
    check_workload("vwap", 150, &[CompileMode::HigherOrder]);
}

#[test]
fn axf_compiled_equals_interpreted() {
    check_workload(
        "axf",
        500,
        &[CompileMode::HigherOrder, CompileMode::FirstOrder],
    );
}

#[test]
fn bsp_compiled_equals_interpreted() {
    check_workload("bsp", 500, &[CompileMode::HigherOrder]);
}

#[test]
fn bsv_compiled_equals_interpreted() {
    check_workload("bsv", 500, &[CompileMode::HigherOrder]);
}

#[test]
fn mst_compiled_equals_interpreted() {
    check_workload("mst", 60, &[CompileMode::HigherOrder]);
}

#[test]
fn psp_compiled_equals_interpreted() {
    check_workload("psp", 250, &[CompileMode::HigherOrder]);
}

#[test]
fn mddb1_compiled_equals_interpreted() {
    check_workload("mddb1", 200, &[CompileMode::HigherOrder]);
}

// ------------------------------------------------- proptest random programs

mod random_programs {
    use dbtoaster::agca::{Expr, UpdateEvent};
    use dbtoaster::compiler::{
        compile, Catalog, CompileMode, CompileOptions, QuerySpec, RelationMeta,
    };
    use dbtoaster::gmr::Value;
    use dbtoaster::runtime::Engine;
    use proptest::prelude::*;

    /// Small deterministic generator state derived from a proptest seed.
    struct Gen(u64);

    impl Gen {
        fn next(&mut self, bound: usize) -> usize {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((self.0 >> 33) as usize) % bound
        }

        fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
            &xs[self.next(xs.len())]
        }
    }

    fn catalog() -> Catalog {
        [
            RelationMeta::stream("R", ["A", "B"]),
            RelationMeta::stream("S", ["B", "C"]),
        ]
        .into_iter()
        .collect()
    }

    /// A random query over R(a,b) and S(b,c): a product of one or two atoms,
    /// optional comparison and weight factors, optionally a lifted nested
    /// aggregate with a filter, wrapped in a group-by over a random subset of
    /// the bound variables. Every generated query is a valid AGCA expression
    /// with all value uses bound.
    fn random_query(seed: u64) -> QuerySpec {
        let mut g = Gen(seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1));
        let mut factors: Vec<Expr> = vec![Expr::rel("R", ["a", "b"])];
        let mut bound: Vec<&'static str> = vec!["a", "b"];
        if g.next(2) == 0 {
            factors.push(Expr::rel("S", ["b", "c"]));
            bound.push("c");
        }
        match g.next(4) {
            0 => {
                let l = *g.pick(&bound);
                let r = *g.pick(&bound);
                let op = *g.pick(&[
                    dbtoaster::agca::CmpOp::Lt,
                    dbtoaster::agca::CmpOp::Le,
                    dbtoaster::agca::CmpOp::Eq,
                    dbtoaster::agca::CmpOp::Ne,
                ]);
                factors.push(Expr::cmp(op, Expr::var(l), Expr::var(r)));
            }
            1 => {
                // Lifted nested aggregate correlated on b, plus a filter on it.
                let nested = Expr::agg_sum(
                    ["b"],
                    Expr::product_of([Expr::rel("S", ["b", "d"]), Expr::var("d")]),
                );
                factors.push(Expr::lift("z", nested));
                factors.push(Expr::cmp(
                    dbtoaster::agca::CmpOp::Lt,
                    Expr::var("a"),
                    Expr::var("z"),
                ));
            }
            2 => {
                // Scalar weight.
                factors.push(Expr::var(*g.pick(&bound)));
            }
            _ => {}
        }
        if g.next(4) == 0 {
            factors.push(Expr::neg(Expr::val(1)));
        }
        let candidates: Vec<&'static str> = bound
            .iter()
            .copied()
            .filter(|_| g.next(2) == 0)
            .take(2)
            .collect();
        let out_vars: Vec<String> = candidates.iter().map(|s| s.to_string()).collect();
        QuerySpec {
            name: "Q".into(),
            out_vars: out_vars.clone(),
            expr: Expr::agg_sum(out_vars, Expr::product_of(factors)),
        }
    }

    /// Random insert/delete stream over R and S with a small integer domain.
    fn stream(seed: u64, events: usize) -> Vec<UpdateEvent> {
        let mut g = Gen(seed.wrapping_add(77));
        let mut live: Vec<(&'static str, i64, i64)> = Vec::new();
        let mut out = Vec::with_capacity(events);
        for _ in 0..events {
            if !live.is_empty() && g.next(4) == 0 {
                let (rel, x, y) = live.swap_remove(g.next(live.len()));
                out.push(UpdateEvent::delete(
                    rel,
                    vec![Value::long(x), Value::long(y)],
                ));
            } else {
                let rel = if g.next(2) == 0 { "R" } else { "S" };
                let x = g.next(6) as i64;
                let y = g.next(5) as i64;
                live.push((rel, x, y));
                out.push(UpdateEvent::insert(
                    rel,
                    vec![Value::long(x), Value::long(y)],
                ));
            }
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Compiled kernels reproduce the interpreter **bit-exactly** on
        /// random programs over integer data, in every compilation mode.
        #[test]
        fn compiled_is_bit_exact_on_random_programs(seed in 0u32..1_000_000) {
            let seed = seed as u64;
            let q = random_query(seed);
            let events = stream(seed, 200);
            for mode in [
                CompileMode::HigherOrder,
                CompileMode::FirstOrder,
                CompileMode::NaiveViewlet,
                CompileMode::Reevaluate,
            ] {
                let program = compile(
                    std::slice::from_ref(&q),
                    &catalog(),
                    &CompileOptions::for_mode(mode),
                )
                .unwrap_or_else(|e| panic!("seed {seed} [{mode}]: {e}"));

                let mut compiled = Engine::new(program.clone(), &catalog());
                compiled
                    .process_all(&events)
                    .unwrap_or_else(|e| panic!("seed {seed} [{mode}] compiled: {e}"));

                let mut interp = Engine::new(program, &catalog());
                interp.set_force_interpreter(true);
                interp
                    .process_all(&events)
                    .unwrap_or_else(|e| panic!("seed {seed} [{mode}] interpreted: {e}"));

                let got = compiled.snapshot();
                let expect = interp.snapshot();
                prop_assert_eq!(got.len(), expect.len());
                for (name, g) in got.iter() {
                    let e = expect.get(name).expect("same view set");
                    prop_assert!(
                        g.equivalent(e, 0.0),
                        "seed {} [{}]: map {} differs\ncompiled:\n{}\ninterpreted:\n{}",
                        seed, mode, name, g, e
                    );
                }
            }
        }
    }
}

// -------------------------------------- trigger-variable capture regression

/// Self-join chains whose auxiliary maps are keyed by *trigger variables*
/// (`R@0`-style columns of the firing tuple). Before `MapRegistry::register`
/// alpha-renamed those columns per map, two different chains could land on the
/// same map name with clashing schemas: the cubic R×R×R query panicked at
/// compile time ("cannot union schemas") and the R·S·R path join compiled but
/// silently diverged from ground truth on mixed insert/delete streams. Both
/// are pinned here against a from-scratch re-evaluation oracle, across every
/// compile mode, on the compiled-kernel path and with the interpreter forced.
mod trigger_variable_capture {
    use dbtoaster::agca::{DeltaBatch, Expr, UpdateEvent};
    use dbtoaster::compiler::{
        compile, Catalog, CompileMode, CompileOptions, QuerySpec, RelationMeta,
    };
    use dbtoaster::gmr::{Gmr, Value};
    use dbtoaster::runtime::Engine;

    fn catalog() -> Catalog {
        [
            RelationMeta::stream("R", ["A", "B"]),
            RelationMeta::stream("S", ["B", "C"]),
        ]
        .into_iter()
        .collect()
    }

    fn cubic() -> QuerySpec {
        QuerySpec {
            name: "CUBIC".into(),
            out_vars: vec![],
            expr: Expr::agg_sum(
                Vec::<String>::new(),
                Expr::product_of([
                    Expr::rel("R", ["a", "b"]),
                    Expr::rel("R", ["b", "c"]),
                    Expr::rel("R", ["c", "d"]),
                ]),
            ),
        }
    }

    fn path() -> QuerySpec {
        QuerySpec {
            name: "PATH".into(),
            out_vars: vec![],
            expr: Expr::agg_sum(
                Vec::<String>::new(),
                Expr::product_of([
                    Expr::rel("R", ["a", "b"]),
                    Expr::rel("S", ["b", "c"]),
                    Expr::rel("R", ["c", "d"]),
                ]),
            ),
        }
    }

    /// Mixed insert/delete stream over tiny integer domains (0..4), so chain
    /// joins hit many matches and deletions retract non-trivial state.
    fn stream(seed: u64, len: usize) -> Vec<UpdateEvent> {
        let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move |bound: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % bound
        };
        let mut live_r: Vec<Vec<Value>> = Vec::new();
        let mut live_s: Vec<Vec<Value>> = Vec::new();
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            let relation_r = next(2) == 0;
            let (live, rel) = if relation_r {
                (&mut live_r, "R")
            } else {
                (&mut live_s, "S")
            };
            let delete = !live.is_empty() && next(100) < 35;
            if delete {
                let i = next(live.len() as u64) as usize;
                let tuple = live.swap_remove(i);
                out.push(UpdateEvent::delete(rel, tuple));
            } else {
                let tuple: Vec<Value> = (0..2).map(|_| Value::long(next(4) as i64)).collect();
                live.push(tuple.clone());
                out.push(UpdateEvent::insert(rel, tuple));
            }
        }
        out
    }

    /// Ground truth independent of the incremental machinery: one big
    /// re-evaluation batch on the interpreter recomputes the query from the
    /// final relation state.
    fn recompute(q: &QuerySpec, events: &[UpdateEvent]) -> Gmr {
        let program = compile(
            std::slice::from_ref(q),
            &catalog(),
            &CompileOptions::for_mode(CompileMode::Reevaluate),
        )
        .unwrap();
        let mut engine = Engine::new(program, &catalog());
        engine.set_force_interpreter(true);
        let mut batch = DeltaBatch::new();
        for e in events {
            batch.push(e);
        }
        let report = engine.process_batch(&batch);
        assert!(report.first_error.is_none(), "{:?}", report.first_error);
        engine.view(&q.name).unwrap()
    }

    fn check_against_oracle(q: &QuerySpec, seed: u64, len: usize) {
        let events = stream(seed, len);
        let truth = recompute(q, &events);
        for mode in [
            CompileMode::HigherOrder,
            CompileMode::FirstOrder,
            CompileMode::NaiveViewlet,
            CompileMode::Reevaluate,
        ] {
            for force_interp in [false, true] {
                let program = compile(
                    std::slice::from_ref(q),
                    &catalog(),
                    &CompileOptions::for_mode(mode),
                )
                .unwrap_or_else(|e| panic!("compile {} [{mode}]: {e}", q.name));
                let mut engine = Engine::new(program, &catalog());
                engine.set_force_interpreter(force_interp);
                engine
                    .process_all(&events)
                    .unwrap_or_else(|e| panic!("{} [{mode}/interp={force_interp}]: {e}", q.name));
                let got = engine.view(&q.name).unwrap();
                assert!(
                    got.equivalent(&truth, 1e-6),
                    "{} [{mode}/interp={force_interp}] diverges from recompute oracle\n\
                     got:\n{got}\ntruth:\n{truth}",
                    q.name
                );
            }
        }
    }

    #[test]
    fn cubic_self_join_matches_recompute_oracle() {
        // Pre-fix: compile panicked in HigherOrder mode before any event ran.
        check_against_oracle(&cubic(), 7, 60);
        check_against_oracle(&cubic(), 19, 60);
    }

    #[test]
    fn path_join_matches_recompute_oracle() {
        // Pre-fix: compiled fine but drifted from ground truth per event.
        check_against_oracle(&path(), 3, 80);
        check_against_oracle(&path(), 23, 80);
    }
}
