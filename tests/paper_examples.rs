//! Reproductions of the worked examples in the paper's text.
//!
//! These tests pin the system's behaviour to the concrete numbers and program shapes
//! the paper gives: the Example 1 table of view states, Example 2's constant-time
//! triggers, Theorem 1's degree reduction, and the structure of the Q18a and PSP
//! trigger programs discussed in Section 6.

use dbtoaster::agca::{delta, Expr, TupleUpdate, UpdateSign};
use dbtoaster::compiler::{compile, CompileMode, CompileOptions, QuerySpec, RelationMeta, StmtOp};
use dbtoaster::prelude::*;
use dbtoaster::runtime::Engine;

// ---------------------------------------------------------------------- Example 1

/// Example 1: Q counts the tuples of R x S. The paper's table of view states:
///
/// | time | insert into | ‖R‖ | ‖S‖ | Q  |
/// |------|-------------|-----|-----|----|
/// | 0    | —           | 2   | 3   | 6  |
/// | 1    | S           | 2   | 4   | 8  |
/// | 2    | R           | 3   | 4   | 12 |
/// | 3    | S           | 3   | 5   | 15 |
/// | 4    | S           | 3   | 6   | 18 |
#[test]
fn example1_view_state_sequence() {
    let catalog: dbtoaster::compiler::Catalog = [
        RelationMeta::stream("R", ["a"]),
        RelationMeta::stream("S", ["b"]),
    ]
    .into_iter()
    .collect();
    let q = QuerySpec {
        name: "Q".into(),
        out_vars: vec![],
        expr: Expr::agg_sum(
            Vec::<String>::new(),
            Expr::product_of([Expr::rel("R", ["a"]), Expr::rel("S", ["b"])]),
        ),
    };
    let program = compile(&[q], &catalog, &CompileOptions::default()).unwrap();
    let mut engine = Engine::new(program, &catalog);

    let ins = |rel: &str, v: i64| UpdateEvent::insert(rel, vec![Value::long(v)]);
    // Initial state: ||R|| = 2, ||S|| = 3 -> Q = 6.
    for i in 0..2 {
        engine.process(&ins("R", i)).unwrap();
    }
    for i in 0..3 {
        engine.process(&ins("S", i)).unwrap();
    }
    assert_eq!(engine.result("Q").unwrap().scalar_value(), 6.0);

    // The paper's insert sequence S, R, S, S and the resulting Q values.
    let expected = [("S", 8.0), ("R", 12.0), ("S", 15.0), ("S", 18.0)];
    for (i, (rel, q_value)) in expected.iter().enumerate() {
        engine.process(&ins(rel, 100 + i as i64)).unwrap();
        assert_eq!(
            engine.result("Q").unwrap().scalar_value(),
            *q_value,
            "after insertion #{i} into {rel}"
        );
    }
}

/// In Example 1 the first-order views are ∆_R Q = count(S) and ∆_S Q = count(R); the
/// second-order deltas are the constant 1. Check that the compiled program materializes
/// first-order views whose contents track the relation counts.
#[test]
fn example1_first_order_views_track_counts() {
    let catalog: dbtoaster::compiler::Catalog = [
        RelationMeta::stream("R", ["a"]),
        RelationMeta::stream("S", ["b"]),
    ]
    .into_iter()
    .collect();
    let q = QuerySpec {
        name: "Q".into(),
        out_vars: vec![],
        expr: Expr::agg_sum(
            Vec::<String>::new(),
            Expr::product_of([Expr::rel("R", ["a"]), Expr::rel("S", ["b"])]),
        ),
    };
    let program = compile(&[q], &catalog, &CompileOptions::default()).unwrap();
    // Q plus two auxiliary views.
    assert!(program.maps.len() >= 3);
    let mut engine = Engine::new(program, &catalog);
    for i in 0..4 {
        engine
            .process(&UpdateEvent::insert("R", vec![Value::long(i)]))
            .unwrap();
    }
    for i in 0..2 {
        engine
            .process(&UpdateEvent::insert("S", vec![Value::long(i)]))
            .unwrap();
    }
    // Some auxiliary view holds count(R) = 4 and another count(S) = 2.
    let aux_values: Vec<f64> = engine
        .program()
        .maps
        .iter()
        .filter(|m| !m.is_query_result)
        .filter_map(|m| engine.view(&m.name).map(|g| g.scalar_value()))
        .collect();
    assert!(
        aux_values.contains(&4.0),
        "count(R) view missing: {aux_values:?}"
    );
    assert!(
        aux_values.contains(&2.0),
        "count(S) view missing: {aux_values:?}"
    );
    assert_eq!(engine.result("Q").unwrap().scalar_value(), 8.0);
}

// ---------------------------------------------------------------------- Example 2

/// Example 2 / Example 9: the triggers for the order-value query are constant time —
/// no statement loops over a view.
#[test]
fn example2_triggers_have_no_loops() {
    let catalog: dbtoaster::compiler::Catalog = [
        RelationMeta::stream("O", ["ORDK", "CUSTK", "XCH"]),
        RelationMeta::stream("LI", ["ORDK", "PTK", "PRICE"]),
    ]
    .into_iter()
    .collect();
    let q = QuerySpec {
        name: "Q".into(),
        out_vars: vec![],
        expr: Expr::agg_sum(
            Vec::<String>::new(),
            Expr::product_of([
                Expr::rel("O", ["ORDK", "CUSTK", "XCH"]),
                Expr::rel("LI", ["ORDK", "PTK", "PRICE"]),
                Expr::var("PRICE"),
                Expr::var("XCH"),
            ]),
        ),
    };
    let program = compile(&[q], &catalog, &CompileOptions::default()).unwrap();
    for trigger in &program.triggers {
        for stmt in &trigger.statements {
            assert!(
                stmt.loop_vars.is_empty(),
                "statement should be constant-time: {stmt}"
            );
        }
    }
    // The delete triggers are the duals of the insert triggers (same statement count).
    let ins = program.trigger("O", UpdateSign::Insert).unwrap();
    let del = program.trigger("O", UpdateSign::Delete).unwrap();
    assert_eq!(ins.statements.len(), del.statements.len());
}

// ----------------------------------------------------------------------- Theorem 1

/// Theorem 1: for queries without nested aggregates, each delta reduces the degree by
/// exactly one, and the viewlet transform therefore terminates.
#[test]
fn theorem1_degree_reduction_chain() {
    // A 3-way join: degree 3.
    let q = Expr::agg_sum(
        Vec::<String>::new(),
        Expr::product_of([
            Expr::rel("R", ["A", "B"]),
            Expr::rel("S", ["B", "C"]),
            Expr::rel("T", ["C", "D"]),
        ]),
    );
    assert_eq!(q.degree(), 3);
    let upd = |rel: &str, cols: &[&str]| {
        TupleUpdate::new(
            rel,
            UpdateSign::Insert,
            &cols.iter().map(|c| c.to_string()).collect::<Vec<_>>(),
        )
    };
    let d1 = delta(&q, &upd("R", &["A", "B"]));
    assert_eq!(d1.degree(), 2);
    let d2 = delta(&d1, &upd("S", &["B", "C"]));
    assert_eq!(d2.degree(), 1);
    let d3 = delta(&d2, &upd("T", &["C", "D"]));
    assert_eq!(d3.degree(), 0);
    let d4 = delta(&d3, &upd("R", &["A", "B"]));
    assert!(dbtoaster::agca::simplify(&d4).is_zero());
}

// ------------------------------------------------------------------- Section 6: Q18a

/// Section 6.1 (simplified TPC-H Q18): the nested aggregate is equality-correlated, so
/// DBToaster maintains it incrementally (no re-evaluation statements), and the program
/// materializes the nested sum-of-quantities view keyed by order.
#[test]
fn q18a_compiles_to_incremental_program() {
    let catalog = dbtoaster::workloads::tpch_catalog();
    let q = dbtoaster::workloads::query("q18a").unwrap();
    let engine = QueryEngineBuilder::new(catalog)
        .add_query(q.name, q.sql)
        .mode(CompileMode::HigherOrder)
        .build()
        .unwrap();
    let program = engine.program();
    assert!(
        !program.report.used_reevaluation,
        "q18a must be maintained incrementally"
    );
    assert!(program.report.used_incremental_nested);
    assert!(program.report.used_nested_rewrite);
    // No trigger statement scans a base relation.
    assert!(program.stored_relations.is_empty(), "{program}");
}

// ------------------------------------------------------------------- Section 6.2: PSP

/// Section 6.2 (the price-spread query): both nested aggregates are uncorrelated, so
/// DBToaster re-evaluates the top-level result from a handful of constant-size
/// auxiliary views on every update — and never materializes the cross product.
#[test]
fn psp_compiles_to_reevaluation_over_small_views() {
    let catalog = dbtoaster::workloads::finance_catalog();
    let q = dbtoaster::workloads::query("psp").unwrap();
    let engine = QueryEngineBuilder::new(catalog)
        .add_query(q.name, q.sql)
        .mode(CompileMode::HigherOrder)
        .build()
        .unwrap();
    let program = engine.program();
    assert!(program.report.used_reevaluation, "{program}");
    // The result map is refreshed by := statements in the Bids/Asks triggers.
    let bids = program.trigger("Bids", UpdateSign::Insert).unwrap();
    assert!(bids
        .statements
        .iter()
        .any(|s| s.op == StmtOp::Replace && s.target == "psp"));
    // The auxiliary views are keyed by at most one column (no cross products).
    for m in &program.maps {
        if m.is_query_result {
            continue;
        }
        assert!(
            m.out_vars.len() <= 1,
            "PSP auxiliary views must be small: {}[{}]",
            m.name,
            m.out_vars.join(", ")
        );
    }
}

// --------------------------------------------------------- deletions are exact duals

#[test]
fn delete_triggers_are_duals_of_insert_triggers() {
    let catalog = dbtoaster::workloads::tpch_catalog();
    let q = dbtoaster::workloads::query("q3").unwrap();
    let engine = QueryEngineBuilder::new(catalog)
        .add_query(q.name, q.sql)
        .build()
        .unwrap();
    let program = engine.program();
    for rel in ["Customer", "Orders", "Lineitem"] {
        let ins = program.trigger(rel, UpdateSign::Insert);
        let del = program.trigger(rel, UpdateSign::Delete);
        assert_eq!(
            ins.map(|t| t.statements.len()),
            del.map(|t| t.statements.len()),
            "insert/delete triggers for {rel} must mirror each other"
        );
    }
}
