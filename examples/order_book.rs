//! Algorithmic-trading order-book monitoring (the paper's motivating application).
//!
//! Maintains three of the financial views from the evaluation — AXF, BSV and PSP — over
//! a synthetic order-book stream, printing a monitoring snapshot every 10 000 events.
//! Order books hold long-lived state (an order may rest in the book indefinitely), which
//! is exactly why window-based stream engines cannot express these views and why the
//! paper argues for incremental maintenance of full SQL semantics.
//!
//! Run with: `cargo run --release --example order_book`

use dbtoaster::prelude::*;
use dbtoaster::workloads::{self, FinanceConfig};

fn main() -> Result<(), DbToasterError> {
    let catalog = workloads::finance_catalog();
    let axf = workloads::query("axf").unwrap();
    let bsv = workloads::query("bsv").unwrap();
    let psp = workloads::query("psp").unwrap();

    let mut engine = QueryEngineBuilder::new(catalog)
        .add_query(axf.name, axf.sql)
        .add_query(bsv.name, bsv.sql)
        .add_query(psp.name, psp.sql)
        .mode(CompileMode::HigherOrder)
        .build()?;

    let stream = workloads::finance::generate(&FinanceConfig {
        events: 50_000,
        seed: 2024,
        brokers: 10,
        delete_probability: 0.25,
    });
    println!("order-book stream: {} events over 10 brokers", stream.len());

    for (i, event) in stream.events.iter().enumerate() {
        engine.process(event)?;
        if (i + 1) % 10_000 == 0 {
            let psp_value = engine.result("psp")?.scalar();
            let axf_rows = engine.result("axf")?;
            let top_broker = axf_rows
                .rows
                .iter()
                .max_by(|a, b| a.values[0].abs().partial_cmp(&b.values[0].abs()).unwrap());
            println!(
                "event {:>6}: price spread = {:>14.2}, brokers tracked by AXF = {:>2}, largest AXF imbalance = {:?}",
                i + 1,
                psp_value,
                axf_rows.len(),
                top_broker.map(|r| (r.key.clone(), r.values[0]))
            );
        }
    }

    let stats = engine.stats();
    println!(
        "\n{} events processed in {:.2} s ({:.0} refreshes/s across 3 simultaneously fresh views)",
        stats.events,
        stats.busy.as_secs_f64(),
        stats.refresh_rate()
    );
    Ok(())
}
