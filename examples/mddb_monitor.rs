//! Scientific monitoring: incremental statistics over a molecular-dynamics simulation,
//! observed **over HTTP** the way an external dashboard would.
//!
//! Maintains the MDDB1-style view (sum of squared distances between the selected LYS
//! and TIP3 atoms, per time step) while atom positions stream into a served engine.
//! Unlike the other examples, the monitoring side never touches an in-process handle:
//! it polls the server's std-only HTTP exporter — `/views` for per-view counters,
//! `/healthz` for liveness and queue depth, `/metrics` for the Prometheus exposition,
//! and `/explain` for the compiled plan — exactly what `curl` or a Prometheus scrape
//! would see.
//!
//! Run with: `cargo run --release --example mddb_monitor`

use dbtoaster::prelude::*;
use dbtoaster::workloads::{self, MddbConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One GET against the exporter; returns the response body.
fn http_get(addr: SocketAddr, path: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(5)))?;
    write!(
        stream,
        "GET {path} HTTP/1.1\r\nHost: monitor\r\nConnection: close\r\n\r\n"
    )?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    Ok(raw
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_string())
        .unwrap_or_default())
}

/// Crude scalar-field extraction from the exporter's flat JSON bodies.
fn json_u64(body: &str, key: &str) -> Option<u64> {
    let at = body.find(&format!("\"{key}\":"))? + key.len() + 3;
    let rest = &body[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn main() -> Result<(), DbToasterError> {
    let catalog = workloads::mddb_catalog();
    let q = workloads::query("mddb1").unwrap();
    let mut engine = QueryEngineBuilder::new(catalog)
        .add_query(q.name, q.sql)
        .mode(CompileMode::HigherOrder)
        .build()?;

    let data = workloads::mddb::generate(&MddbConfig {
        atoms: 80,
        steps: 100,
        seed: 13,
    });
    for (table, rows) in &data.tables {
        engine.load_table(table, rows.clone())?;
    }
    engine.init()?;
    println!(
        "simulation: {} atoms, {} position updates",
        data.tables["AtomMeta"].len(),
        data.len()
    );

    // Serve the engine with the HTTP exporter on an ephemeral loopback port.
    let server = engine.serve_with(ServerConfig {
        http: Some(HttpConfig::default()),
        ..ServerConfig::default()
    })?;
    let addr = server.http_addr().expect("exporter enabled in the config");
    println!(
        "observability endpoints at http://{addr}/ (metrics, healthz, views, explain, traces)\n"
    );

    // Stream the simulation in ten slices; after each, monitor *over HTTP*.
    let ingest = server.handle();
    let slice = data.events.len().div_ceil(10);
    for (i, chunk) in data.events.chunks(slice.max(1)).enumerate() {
        ingest
            .send_batch(chunk.to_vec())
            .expect("writer thread alive for the whole stream");
        server.flush()?;
        let views = http_get(addr, "/views").expect("exporter reachable");
        let health = http_get(addr, "/healthz").expect("exporter reachable");
        println!(
            "slice {:>2}: events={:>6} queue_depth={} result_map_size={}",
            i + 1,
            json_u64(&views, "events").unwrap_or(0),
            json_u64(&health, "ingest_queue_depth").unwrap_or(0),
            // The result map is the last-registered view in the snapshot; the
            // mddb1 result map's size equals the number of tracked time steps.
            views
                .rfind("\"map_size\":")
                .and_then(|at| json_u64(&views[at..], "map_size"))
                .unwrap_or(0),
        );
    }

    // The same surface a Prometheus scrape sees.
    let metrics = http_get(addr, "/metrics").expect("exporter reachable");
    println!("\nselected /metrics families:");
    for line in metrics.lines().filter(|l| {
        l.starts_with("dbtoaster_events_total") || l.starts_with("dbtoaster_batch_seconds_count")
    }) {
        println!("  {line}");
    }

    // And the compiled story behind those numbers: EXPLAIN ANALYZE.
    let explain = http_get(addr, "/explain").expect("exporter reachable");
    println!("\n/explain (first lines):");
    for line in explain.lines().take(8) {
        println!("  {line}");
    }

    server.shutdown()?;
    Ok(())
}
