//! Scientific monitoring: incremental statistics over a molecular-dynamics simulation.
//!
//! Maintains the MDDB1-style view (sum of squared distances between the selected LYS
//! and TIP3 atoms, per time step) while atom positions stream in from the simulation,
//! joined against the static `AtomMeta` table. This mirrors the paper's scientific
//! workload, where analysis queries must stay fresh as the simulation produces new
//! snapshots.
//!
//! Run with: `cargo run --release --example mddb_monitor`

use dbtoaster::prelude::*;
use dbtoaster::workloads::{self, MddbConfig};

fn main() -> Result<(), DbToasterError> {
    let catalog = workloads::mddb_catalog();
    let q = workloads::query("mddb1").unwrap();
    let mut engine = QueryEngineBuilder::new(catalog)
        .add_query(q.name, q.sql)
        .mode(CompileMode::HigherOrder)
        .build()?;

    // Attach a telemetry handle: every refresh lands in a latency histogram,
    // kernel time is split by batch strategy, and each view counts its writes.
    let tel = Telemetry::with_config(TelemetryConfig::default());
    engine.set_telemetry(tel.clone());

    let data = workloads::mddb::generate(&MddbConfig {
        atoms: 80,
        steps: 100,
        seed: 13,
    });
    for (table, rows) in &data.tables {
        engine.load_table(table, rows.clone())?;
    }
    engine.init()?;
    println!(
        "simulation: {} atoms, {} position updates",
        data.tables["AtomMeta"].len(),
        data.len()
    );

    let per_step = data.len() / 100;
    for (i, event) in data.events.iter().enumerate() {
        engine.process(event)?;
        // Report every 20 simulated time steps.
        if per_step > 0 && (i + 1) % (per_step * 20) == 0 {
            let result = engine.result("mddb1")?;
            let latest = result
                .rows
                .iter()
                .max_by_key(|r| r.key.first().and_then(|v| v.as_i64().ok()).unwrap_or(0));
            println!(
                "{:>6} updates processed, {:>3} time steps tracked, latest step statistic = {:?}",
                i + 1,
                result.len(),
                latest.map(|r| r.values[0])
            );
        }
    }

    let stats = engine.stats();
    println!(
        "\n{} updates at {:.0} refreshes/s, {:.1} MB of view state",
        stats.events,
        stats.refresh_rate(),
        engine.memory_bytes() as f64 / (1024.0 * 1024.0)
    );

    // A monitoring deployment cares about tail latency, not just throughput:
    // the histogram answers "how stale can a refresh get" directly.
    engine.flush_telemetry();
    let m = tel.snapshot();
    let b = &m.batch_latency;
    println!(
        "refresh latency over {} updates: p50={}ns p90={}ns p99={}ns max={}ns",
        b.count, b.p50_nanos, b.p90_nanos, b.p99_nanos, b.max_nanos
    );
    for (stage, h) in &m.stages {
        if h.count > 0 {
            println!(
                "  stage {:<22} {:>8} samples  p50={}ns p99={}ns",
                stage.name(),
                h.count,
                h.p50_nanos,
                h.p99_nanos
            );
        }
    }
    for v in &m.views {
        println!(
            "  view {:<24} {:>8} rows written, map size {}",
            v.name, v.rows_written, v.map_size
        );
    }
    Ok(())
}
