//! Scientific monitoring: incremental statistics over a molecular-dynamics simulation.
//!
//! Maintains the MDDB1-style view (sum of squared distances between the selected LYS
//! and TIP3 atoms, per time step) while atom positions stream in from the simulation,
//! joined against the static `AtomMeta` table. This mirrors the paper's scientific
//! workload, where analysis queries must stay fresh as the simulation produces new
//! snapshots.
//!
//! Run with: `cargo run --release --example mddb_monitor`

use dbtoaster::prelude::*;
use dbtoaster::workloads::{self, MddbConfig};

fn main() -> Result<(), DbToasterError> {
    let catalog = workloads::mddb_catalog();
    let q = workloads::query("mddb1").unwrap();
    let mut engine = QueryEngineBuilder::new(catalog)
        .add_query(q.name, q.sql)
        .mode(CompileMode::HigherOrder)
        .build()?;

    let data = workloads::mddb::generate(&MddbConfig {
        atoms: 80,
        steps: 100,
        seed: 13,
    });
    for (table, rows) in &data.tables {
        engine.load_table(table, rows.clone())?;
    }
    engine.init()?;
    println!(
        "simulation: {} atoms, {} position updates",
        data.tables["AtomMeta"].len(),
        data.len()
    );

    let per_step = data.len() / 100;
    for (i, event) in data.events.iter().enumerate() {
        engine.process(event)?;
        // Report every 20 simulated time steps.
        if per_step > 0 && (i + 1) % (per_step * 20) == 0 {
            let result = engine.result("mddb1")?;
            let latest = result
                .rows
                .iter()
                .max_by_key(|r| r.key.first().and_then(|v| v.as_i64().ok()).unwrap_or(0));
            println!(
                "{:>6} updates processed, {:>3} time steps tracked, latest step statistic = {:?}",
                i + 1,
                result.len(),
                latest.map(|r| r.values[0])
            );
        }
    }

    let stats = engine.stats();
    println!(
        "\n{} updates at {:.0} refreshes/s, {:.1} MB of view state",
        stats.events,
        stats.refresh_rate(),
        engine.memory_bytes() as f64 / (1024.0 * 1024.0)
    );
    Ok(())
}
