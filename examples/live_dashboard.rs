//! Live dashboard: serve a maintained view to concurrent readers and a
//! change-stream subscriber while a writer ingests updates.
//!
//! This is the serving-layer counterpart of `quickstart.rs`: the same kind of
//! SQL view, but accessed through `serve()` — one writer thread applies the
//! deltas, dashboard threads read consistent lock-free snapshots, and a
//! subscriber receives the per-batch output deltas of the revenue-per-customer
//! query.
//!
//! Run with: `cargo run --example live_dashboard`

use dbtoaster::prelude::*;
use std::thread;

fn main() -> Result<(), DbToasterError> {
    let catalog: SqlCatalog = [
        TableDef::stream("Orders", ["ordk", "custk", "xch"]),
        TableDef::stream("Lineitem", ["ordk", "ptk", "price"]),
    ]
    .into_iter()
    .collect();

    // Compile and immediately start serving: the engine moves into a dedicated
    // writer thread; this thread keeps the ingest and reader handles.
    let server = QueryEngineBuilder::new(catalog)
        .add_query(
            "revenue",
            "SELECT o.custk, SUM(li.price * o.xch) AS total \
             FROM Orders o, Lineitem li WHERE o.ordk = li.ordk GROUP BY o.custk",
        )
        .mode(CompileMode::HigherOrder)
        .serve()?;

    // A subscriber sees each micro-batch's output deltas:
    // (customer key, old total, new total).
    let subscription = server.subscribe("revenue")?;

    // Dashboard readers: lock-free snapshot reads, never blocking the writer.
    let dashboards: Vec<_> = (0..2)
        .map(|id| {
            let reader = server.reader();
            thread::spawn(move || {
                let mut last_epoch = 0;
                let mut polls = 0u64;
                while polls < 200 {
                    let snap = reader.snapshot();
                    if snap.epoch() != last_epoch {
                        last_epoch = snap.epoch();
                        let table = reader.query("revenue").expect("served query");
                        println!(
                            "[dashboard {id}] epoch {} after {} events: {} customers",
                            snap.epoch(),
                            snap.events_applied(),
                            table.len()
                        );
                    }
                    polls += 1;
                    thread::yield_now();
                }
            })
        })
        .collect();

    // The writer side: a stream of orders and line items.
    let ingest = server.handle();
    let mut events = Vec::new();
    for i in 0..1000i64 {
        events.push(UpdateEvent::insert(
            "Orders",
            vec![Value::long(i), Value::long(i % 7), Value::double(2.0)],
        ));
        events.push(UpdateEvent::insert(
            "Lineitem",
            vec![Value::long(i), Value::long(i % 31), Value::double(10.0)],
        ));
    }
    ingest.send_batch(events).expect("server alive");
    let epoch = server.flush().expect("server alive");
    println!("writer: all events published as of epoch {epoch}");

    for d in dashboards {
        d.join().expect("dashboard thread");
    }

    // Drain a few delta batches: replaying them is how a remote cache or
    // websocket tier would keep its copy of the result in sync.
    let mut delta_records = 0;
    while let Some(batch) = subscription.try_recv() {
        delta_records += batch.deltas.len();
    }
    println!("subscriber: {delta_records} output-delta records received");

    let stats = server.stats();
    println!(
        "served {} events in {} batches ({:.0} events/batch), {} snapshots published, {} deltas fanned out",
        stats.events,
        stats.batches,
        stats.events_per_batch(),
        stats.snapshots_published,
        stats.subscriber_deltas,
    );

    // Take the engine back for direct, single-threaded inspection.
    let engine = server.shutdown().map_err(DbToasterError::from)?;
    assert_eq!(engine.stats().events, 2000);
    println!(
        "final check: engine processed {} events",
        engine.stats().events
    );
    Ok(())
}
