//! Live dashboard: a durable served view that survives being killed.
//!
//! The serving-layer counterpart of `quickstart.rs`, now with durability: the
//! revenue view is served through `open_or_create`, which anchors the engine
//! in an on-disk directory (write-ahead log + checkpoints). Act 1 ingests half
//! the stream and then *kills* the server mid-flight — no flush, no final
//! checkpoint, the moral equivalent of `kill -9`. Act 2 reopens the same
//! directory: the engine comes back warm (checkpoint + WAL replay, bit-exact),
//! ingests the second half, and dashboard readers plus a change-stream
//! subscriber carry on as if nothing happened.
//!
//! Run with: `cargo run --example live_dashboard`

use dbtoaster::prelude::*;
use dbtoaster::QueryEngineBuilder;
use std::thread;

fn catalog() -> SqlCatalog {
    [
        TableDef::stream("Orders", ["ordk", "custk", "xch"]),
        TableDef::stream("Lineitem", ["ordk", "ptk", "price"]),
    ]
    .into_iter()
    .collect()
}

fn builder() -> QueryEngineBuilder {
    QueryEngineBuilder::new(catalog())
        .add_query(
            "revenue",
            "SELECT o.custk, SUM(li.price * o.xch) AS total \
             FROM Orders o, Lineitem li WHERE o.ordk = li.ordk GROUP BY o.custk",
        )
        .mode(CompileMode::HigherOrder)
}

fn order_stream(range: std::ops::Range<i64>) -> Vec<UpdateEvent> {
    let mut events = Vec::new();
    for i in range {
        events.push(UpdateEvent::insert(
            "Orders",
            vec![Value::long(i), Value::long(i % 7), Value::double(2.0)],
        ));
        events.push(UpdateEvent::insert(
            "Lineitem",
            vec![Value::long(i), Value::long(i % 31), Value::double(10.0)],
        ));
    }
    events
}

fn main() -> Result<(), DbToasterError> {
    let dir = std::env::temp_dir().join(format!("dbt-live-dashboard-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ---- Act 1: durable serving, killed mid-stream ------------------------
    let mut durability = DurabilityConfig::new(&dir);
    durability.checkpoint_every_events = 500; // checkpoint a few times per act
    let config = ServerConfig {
        durability: Some(durability),
        ..ServerConfig::default()
    };

    let server = builder().open_or_create_with(config.clone())?;
    let ingest = server.handle();
    let accepted = ingest
        .send_batch(order_stream(0..1000))
        .unwrap_or_else(|e| e.accepted);
    server.flush()?;
    let stats = server.stats();
    println!(
        "[act 1] accepted {accepted} events, applied {} as {} delta batches \
         (avg {:.1} events/batch, {} cancelled in-batch), {} checkpoints, {} WAL bytes",
        stats.events,
        stats.delta_batches,
        stats.events_per_batch(),
        stats.batch_events_collapsed,
        stats.checkpoints_taken,
        stats.wal_bytes_written
    );
    println!(
        "[act 1] batch strategies: {} batch-delta runs, {} statement-major, {} entry-major",
        stats.batch_delta_runs, stats.statement_major_runs, stats.entry_major_runs
    );
    println!("[act 1] killing the server: no flush, no final checkpoint");
    server.kill();

    // ---- Act 2: reopen the same directory, warm ---------------------------
    let server = builder().open_or_create_with(config)?;
    let stats = server.stats();
    println!(
        "[act 2] reopened warm: {} events restored ({} replayed from the WAL \
         above the last checkpoint)",
        stats.events, stats.recovery_replayed_events
    );

    // A subscriber sees each micro-batch's output deltas from here on:
    // (customer key, old total, new total).
    let subscription = server.subscribe("revenue")?;

    // Dashboard readers: lock-free snapshot reads, never blocking the writer.
    let dashboards: Vec<_> = (0..2)
        .map(|id| {
            let reader = server.reader();
            thread::spawn(move || {
                let mut last_epoch = 0;
                for _ in 0..200 {
                    let snap = reader.snapshot();
                    if snap.epoch() != last_epoch {
                        last_epoch = snap.epoch();
                        let table = reader.query("revenue").expect("served query");
                        println!(
                            "[dashboard {id}] epoch {} after {} events: {} customers",
                            snap.epoch(),
                            snap.events_applied(),
                            table.len()
                        );
                    }
                    thread::yield_now();
                }
            })
        })
        .collect();

    // Second half of the stream rides on top of the recovered state.
    let ingest = server.handle();
    ingest
        .send_batch(order_stream(1000..2000))
        .expect("server alive");
    let epoch = server.flush()?;
    println!("[act 2] second half published as of epoch {epoch}");

    for d in dashboards {
        d.join().expect("dashboard thread");
    }

    // Drain the delta batches: replaying them is how a remote cache or
    // websocket tier would keep its copy of the result in sync.
    let mut delta_records = 0;
    while let Some(batch) = subscription.try_recv() {
        delta_records += batch.deltas.len();
    }
    println!("[act 2] subscriber: {delta_records} output-delta records received");

    let stats = server.stats();
    println!(
        "[act 2] {} events total, {} snapshots published, {} checkpoints, {} WAL bytes",
        stats.events, stats.snapshots_published, stats.checkpoints_taken, stats.wal_bytes_written
    );
    println!(
        "[act 2] batch strategies (incl. recovery replay): {} batch-delta runs, \
         {} statement-major, {} entry-major",
        stats.batch_delta_runs, stats.statement_major_runs, stats.entry_major_runs
    );

    // Telemetry: the server carries latency histograms and per-stage timings
    // the whole time — percentiles for the batch path, plus where each
    // microsecond went (queue wait, WAL, kernels, publish, checkpoints).
    let m = server.metrics();
    let b = &m.batch_latency;
    println!(
        "[telemetry] {} batches: batch latency p50={}ns p90={}ns p99={}ns max={}ns",
        m.batches, b.p50_nanos, b.p90_nanos, b.p99_nanos, b.max_nanos
    );
    for (stage, h) in &m.stages {
        if h.count > 0 {
            println!(
                "[telemetry] stage {:<22} {:>8} samples  p50={}ns p99={}ns",
                stage.name(),
                h.count,
                h.p50_nanos,
                h.p99_nanos
            );
        }
    }
    for v in &m.views {
        if v.rows_written > 0 {
            println!(
                "[telemetry] view {:<28} {:>6} rows written, map size {}",
                v.name, v.rows_written, v.map_size
            );
        }
    }

    // The served result must be bit-identical to a never-crashed run of the
    // full stream, crash and all.
    let mut served = server.reader().query("revenue")?.rows;
    let mut reference = builder().build()?;
    reference.process_all(&order_stream(0..2000))?;
    let mut expected = reference.result("revenue")?.rows;
    served.sort_by(|a, b| a.key.cmp(&b.key));
    expected.sort_by(|a, b| a.key.cmp(&b.key));
    assert_eq!(served.len(), expected.len());
    for (s, e) in served.iter().zip(expected.iter()) {
        assert_eq!(s.key, e.key);
        assert_eq!(s.values, e.values);
    }
    println!(
        "final check: {} customers, bit-identical to a never-crashed run",
        served.len()
    );

    // Clean shutdown writes a final checkpoint: the *next* open replays zero
    // WAL events.
    let engine = server.shutdown().map_err(DbToasterError::from)?;
    assert_eq!(engine.stats().events, 4000);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}
