//! A "live business dashboard" over a TPC-H-like order stream.
//!
//! Maintains several decision-support views simultaneously (pricing summary Q1, shipping
//! revenue Q3, revenue per customer Q10 and the large-order customers of Q18a) while
//! orders and line items are inserted and deleted, mimicking the ETL/monitoring scenario
//! of the paper's evaluation. Every view is fresh after every single update — no batch
//! window, no refresh interval.
//!
//! Run with: `cargo run --release --example tpch_dashboard`

use dbtoaster::prelude::*;
use dbtoaster::workloads::{self, TpchConfig};

fn main() -> Result<(), DbToasterError> {
    let catalog = workloads::tpch_catalog();
    let queries = ["q1", "q3", "q10", "q18a"];

    let mut builder = QueryEngineBuilder::new(catalog).mode(CompileMode::HigherOrder);
    for name in queries {
        let q = workloads::query(name).unwrap();
        builder = builder.add_query(q.name, q.sql);
    }
    let mut engine = builder.build()?;
    println!(
        "compiled {} queries into {} maps and {} trigger statements",
        queries.len(),
        engine.program().maps.len(),
        engine.program().statement_count()
    );

    // Generate the order stream (deterministic) and load the static tables.
    let data = workloads::tpch::generate(&TpchConfig {
        scale: 0.01,
        seed: 7,
        orders_working_set: 2_000,
        lineitem_working_set: 8_000,
    });
    for (table, rows) in &data.tables {
        engine.load_table(table, rows.clone())?;
    }
    engine.init()?;
    println!("replaying {} updates...", data.len());

    let checkpoint = (data.len() / 5).max(1);
    for (i, event) in data.events.iter().enumerate() {
        engine.process(event)?;
        if (i + 1) % checkpoint == 0 {
            let q1 = engine.result("q1")?;
            let q10 = engine.result("q10")?;
            let q18a = engine.result("q18a")?;
            println!(
                "{:>3.0}% | pricing-summary groups: {:>2} | customers with revenue: {:>5} | large-order customers: {:>4} | {:>7.0} refreshes/s",
                100.0 * (i + 1) as f64 / data.len() as f64,
                q1.len(),
                q10.rows.iter().filter(|r| r.values[0] != 0.0).count(),
                q18a.rows.iter().filter(|r| r.values[0] != 0.0).count(),
                engine.stats().refresh_rate(),
            );
        }
    }

    println!("\nfinal pricing summary (Q1):");
    let q1 = engine.result("q1")?;
    println!("  columns: {:?}", q1.columns);
    for row in &q1.rows {
        println!("  {:?} -> {:?}", row.key, row.values);
    }
    println!(
        "\nview state: {:.1} MB across {} maps",
        engine.memory_bytes() as f64 / (1024.0 * 1024.0),
        engine.program().maps.len()
    );
    Ok(())
}
