//! Quickstart: maintain a SQL view over a stream of single-tuple updates.
//!
//! This is the running example of the paper (Example 2): the total value of all orders,
//! weighted by each order's currency exchange rate, kept fresh as orders and line items
//! arrive and are removed.
//!
//! Run with: `cargo run --example quickstart`

use dbtoaster::prelude::*;

fn main() -> Result<(), DbToasterError> {
    // 1. Declare the schema: two update streams.
    let catalog: SqlCatalog = [
        TableDef::stream("Orders", ["ordk", "custk", "xch"]),
        TableDef::stream("Lineitem", ["ordk", "ptk", "price"]),
    ]
    .into_iter()
    .collect();

    // 2. Compile the SQL view with full Higher-Order IVM.
    let mut engine = QueryEngineBuilder::new(catalog)
        .add_query(
            "total_sales",
            "SELECT SUM(li.price * o.xch) FROM Orders o, Lineitem li WHERE o.ordk = li.ordk",
        )
        .mode(CompileMode::HigherOrder)
        .build()?;

    println!("compiled trigger program:\n{}", engine.program());

    // 3. Feed single-tuple updates; the view is fresh after every one of them.
    let events = [
        UpdateEvent::insert(
            "Orders",
            vec![Value::long(1), Value::long(7), Value::double(2.0)],
        ),
        UpdateEvent::insert(
            "Lineitem",
            vec![Value::long(1), Value::long(100), Value::double(40.0)],
        ),
        UpdateEvent::insert(
            "Lineitem",
            vec![Value::long(1), Value::long(101), Value::double(10.0)],
        ),
        UpdateEvent::insert(
            "Orders",
            vec![Value::long(2), Value::long(8), Value::double(0.5)],
        ),
        UpdateEvent::insert(
            "Lineitem",
            vec![Value::long(2), Value::long(102), Value::double(200.0)],
        ),
        // A line item is cancelled: deletion is just a negative-multiplicity update.
        UpdateEvent::delete(
            "Lineitem",
            vec![Value::long(1), Value::long(101), Value::double(10.0)],
        ),
    ];
    for (i, event) in events.iter().enumerate() {
        engine.process(event)?;
        println!(
            "after event {:>2} ({:?} {:>8}) : total_sales = {}",
            i + 1,
            event.sign,
            event.relation,
            engine.result("total_sales")?.scalar()
        );
    }

    // 4. Inspect runtime statistics.
    let stats = engine.stats();
    println!(
        "\nprocessed {} events at {:.0} view refreshes/second, {} bytes of view state",
        stats.events,
        stats.refresh_rate(),
        engine.memory_bytes()
    );
    Ok(())
}
